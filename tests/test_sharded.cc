// The sharded linkage driver's contract (core/sharded.h):
//
//   * LinkSharded is bit-identical to the monolithic Link at every shard
//     count x thread count, for every candidate generator — including
//     against the committed pre-refactor goldens (tests/golden/), pinned at
//     shard counts {1, 2, 7} x threads {1, 8}.
//   * Shard-restricted candidate generators are exact restrictions of the
//     monolithic candidate set (the union over a partition reproduces it).
//   * The shard planner covers [0, rights) with balanced contiguous
//     ranges, honors explicit counts, and derives counts from the memory
//     budget.
//   * The edge spill round-trips blocks losslessly, on disk and in memory.
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/resource.h"
#include "slim.h"

namespace slim {
namespace {

// The same SM-style workload test_determinism shards over: big enough that
// every parallel stage actually shards, and that 7 right shards are all
// non-trivial.
const LinkedPairSample& Sample() {
  static const LinkedPairSample* sample = [] {
    CheckinGeneratorOptions gen;
    gen.num_users = 500;
    gen.seed = 77;
    const LocationDataset master = GenerateCheckinDataset(gen);
    PairSampleOptions sampling;
    sampling.entities_per_side = 220;
    sampling.intersection_ratio = 0.5;
    sampling.inclusion_probability = 0.5;
    sampling.seed = 78;
    auto s = SampleLinkedPair(master, sampling);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return new LinkedPairSample(std::move(s.value()));
  }();
  return *sample;
}

void ExpectIdenticalResults(const LinkageResult& a, const LinkageResult& b,
                            const std::string& label) {
  // Doubles compare exactly: bit-identical is the contract, not "close".
  EXPECT_EQ(a.links, b.links) << label;
  EXPECT_EQ(a.matching.pairs, b.matching.pairs) << label;
  EXPECT_DOUBLE_EQ(a.matching.total_weight, b.matching.total_weight) << label;
  EXPECT_EQ(a.graph.edges(), b.graph.edges()) << label;
  EXPECT_EQ(a.candidate_pairs, b.candidate_pairs) << label;
  EXPECT_EQ(a.possible_pairs, b.possible_pairs) << label;
  EXPECT_EQ(a.stats.record_comparisons, b.stats.record_comparisons) << label;
  EXPECT_EQ(a.stats.alibi_pairs, b.stats.alibi_pairs) << label;
  EXPECT_EQ(a.stats.entity_pairs, b.stats.entity_pairs) << label;
  // The hit/miss split depends on sharding (each block warms its own
  // cache); only the sum is invariant — same contract as thread counts.
  EXPECT_EQ(a.stats.cache_hits + a.stats.cache_misses,
            b.stats.cache_hits + b.stats.cache_misses)
      << label;
  EXPECT_EQ(a.threshold_valid, b.threshold_valid) << label;
  if (a.threshold_valid && b.threshold_valid) {
    EXPECT_DOUBLE_EQ(a.threshold.threshold, b.threshold.threshold) << label;
  }
}

// ---- Shard planning. ----

TEST(ShardPlan, FixedCoversBalancedContiguousRanges) {
  const ShardPlan plan = ShardPlan::Fixed(23, 5);
  ASSERT_EQ(plan.shards, 5);
  ASSERT_EQ(plan.ranges.size(), 5u);
  EntityIdx expected_begin = 0;
  size_t min_size = 23, max_size = 0;
  for (const auto& [begin, end] : plan.ranges) {
    EXPECT_EQ(begin, expected_begin);
    ASSERT_LT(begin, end);
    min_size = std::min<size_t>(min_size, end - begin);
    max_size = std::max<size_t>(max_size, end - begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 23u);
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ShardPlan, FixedClampsToTheRightStore) {
  const ShardPlan plan = ShardPlan::Fixed(3, 100);
  EXPECT_EQ(plan.shards, 3);
  ASSERT_EQ(plan.ranges.size(), 3u);
  EXPECT_EQ(plan.ranges.front(), (std::pair<EntityIdx, EntityIdx>{0, 1}));

  const ShardPlan empty = ShardPlan::Fixed(0, 4);
  EXPECT_EQ(empty.shards, 1);
  ASSERT_EQ(empty.ranges.size(), 1u);
  EXPECT_EQ(empty.ranges.front(), (std::pair<EntityIdx, EntityIdx>{0, 0}));

  const ShardPlan nonpositive = ShardPlan::Fixed(9, 0);
  EXPECT_EQ(nonpositive.shards, 1);
}

TEST(ShardPlan, BudgetDerivesTheShardCount) {
  const LinkageContext ctx =
      LinkageContext::Build(Sample().a, Sample().b, HistoryConfig{}, 1);
  SlimConfig config;

  // Explicit count wins over any budget.
  config.shards = 3;
  config.shard_memory_budget_bytes = 1;
  EXPECT_EQ(EstimateShardPlan(ctx, config, 0).shards, 3);

  // No count, no budget: one shard.
  config.shards = 0;
  config.shard_memory_budget_bytes = 0;
  EXPECT_EQ(EstimateShardPlan(ctx, config, 0).shards, 1);

  // A huge budget needs no sharding; a tiny one shards hard (clamped to
  // the store size).
  config.shard_memory_budget_bytes = uint64_t{1} << 40;
  EXPECT_EQ(EstimateShardPlan(ctx, config, 0).shards, 1);
  config.shard_memory_budget_bytes = 1;
  const ShardPlan tight = EstimateShardPlan(ctx, config, 0);
  EXPECT_EQ(tight.shards, static_cast<int>(ctx.store_i.size()));
  EXPECT_GT(tight.per_entity_bytes, 0u);

  // Monotone: a bigger budget never yields more shards.
  config.shard_memory_budget_bytes = 1u << 20;
  const int k_small_budget = EstimateShardPlan(ctx, config, 0).shards;
  config.shard_memory_budget_bytes = 8u << 20;
  EXPECT_LE(EstimateShardPlan(ctx, config, 0).shards, k_small_budget);
}

TEST(ShardPlan, PerEntityEstimateHasAFloor) {
  const LinkageContext ctx =
      LinkageContext::Build(Sample().a, Sample().b, HistoryConfig{}, 1);
  EXPECT_GE(EstimateBlockBytesPerEntity(ctx, 0), 64u);
  EXPECT_GE(EstimateBlockBytesPerEntity(ctx, CurrentPeakRssBytes()), 64u);
}

// ---- Edge spill. ----

std::vector<WeightedEdge> MakeEdges(int base, int n) {
  std::vector<WeightedEdge> edges;
  for (int k = 0; k < n; ++k) {
    edges.push_back({base + k, base - k, 0.5 + 0.001 * k});
  }
  return edges;
}

TEST(EdgeSpill, RoundTripsBlocksInAppendOrder) {
  for (const bool to_disk : {false, true}) {
    EdgeSpill spill(to_disk);
    EXPECT_EQ(spill.size(), 0u);
    spill.Append(MakeEdges(100, 3));
    spill.Append({});  // empty blocks are legal
    spill.Append(MakeEdges(7, 2));
    EXPECT_EQ(spill.size(), 5u);

    std::vector<WeightedEdge> expected = MakeEdges(100, 3);
    const std::vector<WeightedEdge> tail = MakeEdges(7, 2);
    expected.insert(expected.end(), tail.begin(), tail.end());
    EXPECT_EQ(spill.TakeAll(), expected) << "to_disk=" << to_disk;
    EXPECT_EQ(spill.size(), 0u);
    EXPECT_EQ(spill.TakeAll(), std::vector<WeightedEdge>{});
  }
}

TEST(EdgeSpill, DiskSpillActuallyUsesAFile) {
  EdgeSpill spill(/*to_disk=*/true);
  if (!spill.on_disk()) GTEST_SKIP() << "no tmpfile on this platform";
  spill.Append(MakeEdges(1, 4));
  EXPECT_TRUE(spill.on_disk());
  EXPECT_EQ(spill.TakeAll(), MakeEdges(1, 4));
}

// ---- Shard-restricted candidate generation. ----

class ShardCandidates : public ::testing::TestWithParam<CandidateKind> {};

TEST_P(ShardCandidates, UnionOverAPartitionEqualsTheFullGenerator) {
  const LinkageContext ctx =
      LinkageContext::Build(Sample().a, Sample().b, HistoryConfig{}, 1);
  const SlimConfig defaults;
  const auto full = MakeCandidateGenerator(GetParam(), ctx, defaults.lsh,
                                           defaults.grid, 1);

  for (const int shards : {2, 7}) {
    const ShardPlan plan = ShardPlan::Fixed(ctx.store_i.size(), shards);
    std::vector<std::unique_ptr<CandidateGenerator>> parts;
    uint64_t total = 0;
    for (const auto& [begin, end] : plan.ranges) {
      parts.push_back(MakeShardCandidateGenerator(
          GetParam(), ctx, defaults.lsh, defaults.grid, begin, end, 1));
      total += parts.back()->total_candidate_pairs();
      EXPECT_EQ(parts.back()->name(), full->name());
    }
    EXPECT_EQ(total, full->total_candidate_pairs()) << shards;

    for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
      std::vector<EntityIdx> merged;
      for (size_t s = 0; s < parts.size(); ++s) {
        const auto span = parts[s]->CandidatesFor(u);
        // Shard lists are ascending and stay inside their range, so
        // concatenation in shard order IS the sorted union.
        for (const EntityIdx v : span) {
          EXPECT_GE(v, plan.ranges[s].first);
          EXPECT_LT(v, plan.ranges[s].second);
        }
        merged.insert(merged.end(), span.begin(), span.end());
      }
      const auto expected = full->CandidatesFor(u);
      ASSERT_EQ(merged, std::vector<EntityIdx>(expected.begin(),
                                               expected.end()))
          << "left " << u << " at " << shards << " shards";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, ShardCandidates,
                         ::testing::Values(CandidateKind::kLsh,
                                           CandidateKind::kBruteForce,
                                           CandidateKind::kGrid),
                         [](const auto& pinfo) {
                           return std::string(CandidateKindName(pinfo.param));
                         });

// ---- The driver: sharded == monolithic, at every K x threads. ----

class ShardedDriver : public ::testing::TestWithParam<CandidateKind> {};

TEST_P(ShardedDriver, MatchesTheMonolithicPathAtEveryShardAndThreadCount) {
  SlimConfig config;
  config.candidates = GetParam();
  config.threads = 1;
  const auto reference = SlimLinker(config).Link(Sample().a, Sample().b);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_GT(reference->links.size(), 0u);

  for (const int shards : {1, 2, 7}) {
    for (const int threads : {1, 8}) {
      config.shards = shards;
      config.threads = threads;
      const auto sharded = SlimLinker(config).LinkSharded(Sample().a,
                                                          Sample().b);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      EXPECT_EQ(sharded->shards_used, shards);
      EXPECT_EQ(sharded->candidates_used, GetParam());
      // Every positive-score edge passes through the spill; the medium is
      // a temp file only when K > 1 (spilling at K == 1 would reload
      // everything immediately).
      EXPECT_EQ(sharded->spilled_edges, sharded->graph.num_edges());
      if (shards == 1) {
        EXPECT_FALSE(sharded->spill_on_disk);
      }
      ExpectIdenticalResults(
          *reference, *sharded,
          StrFormat("%s shards=%d threads=%d",
                    std::string(CandidateKindName(GetParam())).c_str(),
                    shards, threads));
    }
  }
}

TEST_P(ShardedDriver, BudgetDrivenRunMatchesToo) {
  SlimConfig config;
  config.candidates = GetParam();
  config.threads = 2;
  const auto reference = SlimLinker(config).Link(Sample().a, Sample().b);
  ASSERT_TRUE(reference.ok());

  // A deliberately small budget so the planner actually shards.
  config.shards = 0;
  config.shard_memory_budget_bytes = 1u << 20;
  const auto sharded = SlimLinker(config).LinkSharded(Sample().a, Sample().b);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_GE(sharded->shards_used, 1);
  ExpectIdenticalResults(*reference, *sharded, "budget-driven");
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, ShardedDriver,
                         ::testing::Values(CandidateKind::kLsh,
                                           CandidateKind::kBruteForce,
                                           CandidateKind::kGrid),
                         [](const auto& pinfo) {
                           return std::string(CandidateKindName(pinfo.param));
                         });

TEST(ShardedDriver, EmptySidesShortCircuit) {
  LocationDataset empty("empty");
  empty.Finalize();
  SlimConfig config;
  config.shards = 4;
  const auto result = SlimLinker(config).LinkSharded(empty, Sample().b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->links.empty());
  EXPECT_EQ(result->possible_pairs, 0u);
}

TEST(ShardedDriver, RequiresFinalizedDatasets) {
  LocationDataset raw("raw");
  raw.Add(1, {37.7, -122.4}, 1000);
  const auto result = SlimLinker(SlimConfig{}).LinkSharded(raw, Sample().b);
  EXPECT_FALSE(result.ok());
}

// ---- Golden bit-identity: sharded runs against the committed goldens. ----

std::string GoldenPath(const char* name) {
  return std::string(SLIM_TEST_GOLDEN_DIR) + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// u,v,score at 17 fixed decimals — the exact format of the committed
// quick_links_*.csv goldens (see test_determinism.cc).
std::vector<std::string> FormatLinks(
    const std::vector<LinkedEntityPair>& links) {
  std::vector<std::string> lines;
  lines.reserve(links.size());
  for (const auto& link : links) {
    lines.push_back(std::to_string(link.u) + "," + std::to_string(link.v) +
                    "," + FormatFixed(link.score, 17));
  }
  return lines;
}

class ShardedGoldenLinks : public ::testing::Test {
 protected:
  static const LocationDataset& A() {
    static const LocationDataset* a = Load("quick_a.csv", "A");
    return *a;
  }
  static const LocationDataset& B() {
    static const LocationDataset* b = Load("quick_b.csv", "B");
    return *b;
  }

 private:
  static const LocationDataset* Load(const char* name, const char* label) {
    auto ds = ReadDataset(GoldenPath(name), label);
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    return new LocationDataset(std::move(ds.value()));
  }
};

TEST_F(ShardedGoldenLinks, EveryGeneratorShardCountAndThreadCount) {
  const struct {
    CandidateKind kind;
    const char* golden;
  } cases[] = {
      {CandidateKind::kLsh, "quick_links_lsh.csv"},
      {CandidateKind::kBruteForce, "quick_links_brute.csv"},
      {CandidateKind::kGrid, "quick_links_grid.csv"},
  };
  for (const auto& c : cases) {
    const std::vector<std::string> golden = ReadLines(GoldenPath(c.golden));
    ASSERT_GT(golden.size(), 0u) << c.golden;
    for (const int shards : {1, 2, 7}) {
      for (const int threads : {1, 8}) {
        SlimConfig config;
        config.candidates = c.kind;
        config.shards = shards;
        config.threads = threads;
        const auto result =
            SlimLinker(config).LinkSharded(A(), B());
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(FormatLinks(result->links), golden)
            << c.golden << " shards=" << shards << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace slim
