#include "eval/report.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "data/cab_generator.h"
#include "data/sampler.h"

namespace slim {
namespace {

const LinkageResult& SampleResult() {
  static const LinkageResult result = [] {
    CabGeneratorOptions gopt;
    gopt.num_taxis = 24;
    gopt.duration_days = 1.5;
    gopt.record_interval_seconds = 300.0;
    const LocationDataset master = GenerateCabDataset(gopt);
    PairSampleOptions opt;
    opt.entities_per_side = 12;
    auto s = SampleLinkedPair(master, opt);
    SLIM_CHECK(s.ok());
    SlimConfig cfg;
    cfg.candidates = CandidateKind::kBruteForce;
    auto r = SlimLinker(cfg).Link(s->a, s->b);
    SLIM_CHECK(r.ok());
    return std::move(r.value());
  }();
  return result;
}

TEST(Report, ContainsHeadlineSections) {
  ReportOptions opt;
  opt.title = "Test run";
  opt.dataset_a = "meters";
  opt.dataset_b = "wifi";
  const std::string md = RenderLinkageReport(SampleResult(), opt);
  EXPECT_NE(md.find("# Test run"), std::string::npos);
  EXPECT_NE(md.find("`meters`"), std::string::npos);
  EXPECT_NE(md.find("`wifi`"), std::string::npos);
  EXPECT_NE(md.find("## Headline"), std::string::npos);
  EXPECT_NE(md.find("## Phase timings"), std::string::npos);
  EXPECT_NE(md.find("links produced"), std::string::npos);
}

TEST(Report, QualitySectionOnlyWhenProvided) {
  ReportOptions opt;
  const std::string without = RenderLinkageReport(SampleResult(), opt);
  EXPECT_EQ(without.find("Ground-truth quality"), std::string::npos);

  LinkageQuality q;
  q.precision = 0.9;
  q.recall = 0.8;
  q.f1 = 0.847;
  opt.quality = q;
  const std::string with = RenderLinkageReport(SampleResult(), opt);
  EXPECT_NE(with.find("Ground-truth quality"), std::string::npos);
  EXPECT_NE(with.find("0.9000"), std::string::npos);
}

TEST(Report, HistogramSectionForMultiPairResults) {
  ReportOptions opt;
  const std::string md = RenderLinkageReport(SampleResult(), opt);
  if (SampleResult().matching.pairs.size() >= 2) {
    EXPECT_NE(md.find("Matched-score distribution"), std::string::npos);
    EXPECT_NE(md.find('#'), std::string::npos);
  }
}

TEST(Report, ThresholdFailOpenIsExplained) {
  LinkageResult r;  // empty result: threshold_valid = false
  ReportOptions opt;
  const std::string md = RenderLinkageReport(r, opt);
  EXPECT_NE(md.find("not applied"), std::string::npos);
}

TEST(Report, WriteReportToFile) {
  const std::string path = "/tmp/slim_report_test.md";
  ASSERT_TRUE(WriteLinkageReport(SampleResult(), ReportOptions{}, path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(
      WriteLinkageReport(SampleResult(), ReportOptions{}, "/nope/x.md").ok());
}

}  // namespace
}  // namespace slim
