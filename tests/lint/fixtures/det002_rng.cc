// Fixture: ambient entropy sources. Staged as src/data/det002_rng.cc;
// must trigger SLIM-DET-002 four times.
#include <cstdlib>
#include <ctime>
#include <random>

namespace slim {

unsigned Entropy() {
  std::random_device rd;  // finding
  unsigned x = rd();
  x += static_cast<unsigned>(rand());           // finding
  x += static_cast<unsigned>(time(nullptr));    // finding
  srand(static_cast<unsigned>(time(nullptr)));  // finding (srand)
  return x;
}

}  // namespace slim
