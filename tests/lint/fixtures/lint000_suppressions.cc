// Fixture: malformed and unused suppressions. Staged as
// src/eval/lint000_suppressions.cc; must trigger SLIM-LINT-000 three
// times (reasonless, unknown rule id, suppression matching no finding).
namespace slim {

// slim-lint: allow(SLIM-DET-002,)
// slim-lint: allow(SLIM-XYZ-999, no such rule)
// slim-lint: allow(SLIM-HYG-101, nothing here allocates)
inline int Nothing() { return 0; }

}  // namespace slim
