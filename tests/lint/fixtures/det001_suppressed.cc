// Fixture: the same unordered iteration, but legitimately suppressed.
// Staged as src/core/det001_suppressed.cc; must report nothing.
#include <unordered_set>

namespace slim {

int Count(const std::unordered_set<int>& seen) {
  int total = 0;
  // slim-lint: allow(SLIM-DET-001, pure count is order-insensitive)
  for (const int v : seen) {
    total += v != 0 ? 1 : 0;
  }
  return total;
}

}  // namespace slim
