// Fixture: entropy inside the rule's implementation home. Staged as
// src/common/rng.cc, which is exempt from SLIM-DET-002; must report
// nothing even though it touches std::random_device.
#include <random>

namespace slim {

unsigned SeedFromHardware() {
  std::random_device rd;
  return rd();
}

}  // namespace slim
