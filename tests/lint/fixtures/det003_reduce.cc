// Fixture: unordered floating-point accumulation. Staged as
// src/stats/det003_reduce.cc; must trigger SLIM-DET-003 three times.
#include <atomic>
#include <numeric>
#include <vector>

namespace slim {

double Total(const std::vector<double>& xs) {
  std::atomic<double> acc{0.0};  // finding: float atomic
  acc.store(std::reduce(xs.begin(), xs.end()));  // finding: std::reduce
  return acc.load() +
         std::transform_reduce(  // finding: transform_reduce
             xs.begin(), xs.end(), 0.0, [](double a, double b) { return a + b; },
             [](double x) { return x * x; });
}

}  // namespace slim
