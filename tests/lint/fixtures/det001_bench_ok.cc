// Fixture: unordered iteration OUTSIDE result-producing code. Staged as
// bench/det001_bench_ok.cc; SLIM-DET-001 is scoped to src/ and tools/,
// so this must report nothing.
#include <unordered_set>

namespace slim {

int CountBench(const std::unordered_set<int>& seen) {
  int total = 0;
  for (const int v : seen) {
    total += v;
  }
  return total;
}

}  // namespace slim
