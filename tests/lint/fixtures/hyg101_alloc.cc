// Fixture: raw allocation in core code. Staged as
// src/common/hyg101_alloc.cc; must trigger SLIM-HYG-101 three times.
#include <cstdlib>

namespace slim {

int* Make() {
  int* a = new int[4];  // finding: raw new[]
  void* raw = malloc(16);  // finding: malloc
  free(raw);  // finding: free
  return a;
}

}  // namespace slim
