// Fixture: iteration over unordered containers in result-producing code.
// Staged as src/core/det001_unordered.cc; must trigger SLIM-DET-001 three
// times (range-for over a local, range-for over a member, iterator walk).
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace slim {

struct Index {
  std::unordered_map<int, int> by_id;
};

std::vector<int> Emit(const Index& index) {
  std::unordered_set<int> seen;
  seen.insert(1);
  std::vector<int> out;
  for (const int v : seen) {  // finding: local unordered_set
    out.push_back(v);
  }
  for (const auto& [k, v] : index.by_id) {  // finding: unordered member
    out.push_back(k + v);
  }
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // finding: walk
    out.push_back(*it);
  }
  return out;
}

}  // namespace slim
