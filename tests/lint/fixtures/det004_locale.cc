// Fixture: locale-dependent numeric parse/format. Staged as
// src/data/det004_locale.cc; must trigger SLIM-DET-004 five times.
#include <clocale>
#include <cstdlib>
#include <sstream>
#include <string>

namespace slim {

double Parse(const std::string& s) {
  setlocale(LC_ALL, "de_DE.UTF-8");  // finding
  double v = std::stod(s);           // finding
  v += strtod(s.c_str(), nullptr);   // finding
  v += atof(s.c_str());              // finding
  std::stringstream ss;
  ss.imbue(std::locale());  // finding
  return v;
}

}  // namespace slim
