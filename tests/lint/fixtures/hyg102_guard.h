// Fixture: header with a stale copy-paste include guard. Staged as
// src/geo/hyg102_guard.h; must trigger SLIM-HYG-102 (expected guard is
// SLIM_GEO_HYG102_GUARD_H_).
#ifndef SLIM_GEO_SOME_OTHER_HEADER_H_
#define SLIM_GEO_SOME_OTHER_HEADER_H_

namespace slim {
inline int Twelve() { return 12; }
}  // namespace slim

#endif  // SLIM_GEO_SOME_OTHER_HEADER_H_
