#!/usr/bin/env python3
"""Self-tests for tools/slim_lint.py.

Each fixture under tests/lint/fixtures/ seeds one rule (or demonstrates a
suppression / scope exemption).  The driver stages fixtures into a
temporary tree at the path each rule is scoped to, runs the linter over
that tree, and asserts the exact per-rule finding counts.  A final smoke
test runs the linter over the real repository and requires a clean exit,
so the committed tree can never drift out of compliance without failing
ctest.

Stdlib only; invoked by ctest under the `lint` label.
"""

import contextlib
import io
import os
import re
import shutil
import sys
import tempfile
import unittest

THIS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.abspath(os.path.join(THIS_DIR, os.pardir, os.pardir))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import slim_lint  # noqa: E402  (path set up above)

FIXTURES = os.path.join(THIS_DIR, "fixtures")

FINDING_RE = re.compile(r"^(?P<rel>[^:]+):(?P<ln>\d+): \[(?P<rule>[A-Z0-9-]+)\]")

# fixture file -> (staged relpath, {rule id: expected finding count}).
# An empty dict means the staged file must lint clean.
CASES = {
    "det001_unordered.cc": (
        "src/core/det001_unordered.cc", {"SLIM-DET-001": 3}),
    "det001_suppressed.cc": ("src/core/det001_suppressed.cc", {}),
    "det001_bench_ok.cc": ("bench/det001_bench_ok.cc", {}),
    "det002_rng.cc": ("src/data/det002_rng.cc", {"SLIM-DET-002": 4}),
    "det002_rng_home.cc": ("src/common/rng.cc", {}),
    "det003_reduce.cc": ("src/stats/det003_reduce.cc", {"SLIM-DET-003": 3}),
    "det004_locale.cc": ("src/data/det004_locale.cc", {"SLIM-DET-004": 5}),
    "hyg101_alloc.cc": ("src/common/hyg101_alloc.cc", {"SLIM-HYG-101": 3}),
    "hyg102_guard.h": ("src/geo/hyg102_guard.h", {"SLIM-HYG-102": 1}),
    "lint000_suppressions.cc": (
        "src/eval/lint000_suppressions.cc", {"SLIM-LINT-000": 3}),
}


def run_lint(argv):
    """Run slim_lint.main, returning (exit code, findings, stderr text)."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        rc = slim_lint.main(argv)
    findings = []
    for line in out.getvalue().splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append((m.group("rel"), int(m.group("ln")),
                             m.group("rule")))
    return rc, findings, err.getvalue()


class FixtureCorpusTest(unittest.TestCase):
    """Stage every fixture into a temp tree and lint it."""

    @classmethod
    def setUpClass(cls):
        cls.tmp = tempfile.mkdtemp(prefix="slim_lint_fixtures_")
        for fixture, (staged, _) in CASES.items():
            dest = os.path.join(cls.tmp, staged)
            os.makedirs(os.path.dirname(dest), exist_ok=True)
            shutil.copyfile(os.path.join(FIXTURES, fixture), dest)
        cls.rc, cls.findings, cls.stderr = run_lint(["--root", cls.tmp])

    @classmethod
    def tearDownClass(cls):
        shutil.rmtree(cls.tmp, ignore_errors=True)

    def counts_for(self, staged):
        counts = {}
        for rel, _, rule in self.findings:
            if rel == staged:
                counts[rule] = counts.get(rule, 0) + 1
        return counts

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.rc, 1, self.stderr)

    def test_every_fixture_has_expected_findings(self):
        for fixture, (staged, expected) in CASES.items():
            with self.subTest(fixture=fixture):
                self.assertEqual(self.counts_for(staged), expected)

    def test_every_rule_id_is_exercised(self):
        seeded = {rule for _, expected in CASES.values() for rule in expected}
        self.assertEqual(seeded, set(slim_lint.RULES))

    def test_findings_carry_real_line_numbers(self):
        for rel, ln, _ in self.findings:
            path = os.path.join(self.tmp, rel)
            with open(path, encoding="utf-8") as f:
                nlines = len(f.read().split("\n"))
            self.assertTrue(1 <= ln <= nlines, f"{rel}:{ln}")


class SuppressionTest(unittest.TestCase):
    def test_next_line_suppression_is_honored_and_consumed(self):
        tmp = tempfile.mkdtemp(prefix="slim_lint_suppr_")
        try:
            dest = os.path.join(tmp, "src", "core", "s.cc")
            os.makedirs(os.path.dirname(dest))
            shutil.copyfile(
                os.path.join(FIXTURES, "det001_suppressed.cc"), dest)
            rc, findings, stderr = run_lint(["--root", tmp])
            self.assertEqual(rc, 0, stderr)
            self.assertEqual(findings, [])
        finally:
            shutil.rmtree(tmp, ignore_errors=True)


class CleanTreeTest(unittest.TestCase):
    """The committed repository must lint clean (fixtures excluded)."""

    def test_repo_is_clean(self):
        rc, findings, stderr = run_lint(["--root", REPO_ROOT])
        self.assertEqual(findings, [])
        self.assertEqual(rc, 0, stderr)

    def test_scan_covers_the_tree(self):
        _, _, stderr = run_lint(["--root", REPO_ROOT])
        m = re.search(r"slim_lint: (\d+) files", stderr)
        self.assertIsNotNone(m, stderr)
        self.assertGreater(int(m.group(1)), 100, stderr)


class CliTest(unittest.TestCase):
    def test_list_rules_names_every_rule(self):
        rc, _, _ = run_lint(["--list-rules"])
        self.assertEqual(rc, 0)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            slim_lint.main(["--list-rules"])
        for rule in slim_lint.RULES:
            self.assertIn(rule, out.getvalue())


if __name__ == "__main__":
    unittest.main(verbosity=2)
