#include "geo/latlng.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace slim {
namespace {

TEST(LatLng, ValidityChecks) {
  EXPECT_TRUE((LatLng{0.0, 0.0}).IsValid());
  EXPECT_TRUE((LatLng{-90.0, -180.0}).IsValid());
  EXPECT_FALSE((LatLng{90.5, 0.0}).IsValid());
  EXPECT_FALSE((LatLng{0.0, 180.0}).IsValid());  // 180 wraps to -180
}

TEST(LatLng, NormalizedWrapsLongitude) {
  EXPECT_DOUBLE_EQ((LatLng{0.0, 190.0}).Normalized().lng_deg, -170.0);
  EXPECT_DOUBLE_EQ((LatLng{0.0, -190.0}).Normalized().lng_deg, 170.0);
  EXPECT_DOUBLE_EQ((LatLng{0.0, 540.0}).Normalized().lng_deg, -180.0);
  EXPECT_DOUBLE_EQ((LatLng{95.0, 0.0}).Normalized().lat_deg, 90.0);
}

TEST(Haversine, ZeroForIdenticalPoints) {
  const LatLng p{37.7, -122.4};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(Haversine, KnownDistanceSfToLa) {
  // SF (37.7749, -122.4194) to LA (34.0522, -118.2437): ~559 km.
  const double d = HaversineMeters({37.7749, -122.4194}, {34.0522, -118.2437});
  EXPECT_NEAR(d, 559000.0, 5000.0);
}

TEST(Haversine, OneDegreeLatitudeIsAbout111Km) {
  const double d = HaversineMeters({0.0, 0.0}, {1.0, 0.0});
  EXPECT_NEAR(d, 111195.0, 100.0);
}

TEST(Haversine, SymmetricOnRandomPairs) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const LatLng a{rng.NextDouble(-89, 89), rng.NextDouble(-180, 180)};
    const LatLng b{rng.NextDouble(-89, 89), rng.NextDouble(-180, 180)};
    EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
  }
}

TEST(Haversine, TriangleInequalityOnRandomTriples) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const LatLng a{rng.NextDouble(-89, 89), rng.NextDouble(-180, 180)};
    const LatLng b{rng.NextDouble(-89, 89), rng.NextDouble(-180, 180)};
    const LatLng c{rng.NextDouble(-89, 89), rng.NextDouble(-180, 180)};
    EXPECT_LE(HaversineMeters(a, c),
              HaversineMeters(a, b) + HaversineMeters(b, c) + 1e-6);
  }
}

TEST(Haversine, AntipodalIsHalfCircumference) {
  const double d = HaversineMeters({0.0, 0.0}, {0.0, 179.9999});
  EXPECT_NEAR(d, M_PI * kEarthRadiusMeters, 100.0);
}

TEST(DestinationPoint, RoundTripsDistance) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const LatLng origin{rng.NextDouble(-60, 60), rng.NextDouble(-180, 180)};
    const double bearing = rng.NextDouble(0, 360);
    const double dist = rng.NextDouble(10, 200000);
    const LatLng dest = DestinationPoint(origin, bearing, dist);
    EXPECT_NEAR(HaversineMeters(origin, dest), dist, dist * 1e-6 + 0.01);
  }
}

TEST(DestinationPoint, NorthIncreasesLatitude) {
  const LatLng origin{10.0, 20.0};
  const LatLng dest = DestinationPoint(origin, 0.0, 10000.0);
  EXPECT_GT(dest.lat_deg, origin.lat_deg);
  EXPECT_NEAR(dest.lng_deg, origin.lng_deg, 1e-9);
}

TEST(DestinationPoint, ZeroDistanceIsIdentity) {
  const LatLng origin{10.0, 20.0};
  const LatLng dest = DestinationPoint(origin, 123.0, 0.0);
  EXPECT_NEAR(dest.lat_deg, origin.lat_deg, 1e-12);
  EXPECT_NEAR(dest.lng_deg, origin.lng_deg, 1e-12);
}

TEST(InitialBearing, CardinalDirections) {
  const LatLng origin{0.0, 0.0};
  EXPECT_NEAR(InitialBearingDeg(origin, {1.0, 0.0}), 0.0, 1e-9);
  EXPECT_NEAR(InitialBearingDeg(origin, {0.0, 1.0}), 90.0, 1e-9);
  EXPECT_NEAR(InitialBearingDeg(origin, {-1.0, 0.0}), 180.0, 1e-9);
  EXPECT_NEAR(InitialBearingDeg(origin, {0.0, -1.0}), 270.0, 1e-9);
}

TEST(InitialBearing, ConsistentWithDestinationPoint) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const LatLng origin{rng.NextDouble(-60, 60), rng.NextDouble(-170, 170)};
    const double bearing = rng.NextDouble(0, 360);
    const LatLng dest = DestinationPoint(origin, bearing, 5000.0);
    double diff = std::abs(InitialBearingDeg(origin, dest) - bearing);
    if (diff > 180.0) diff = 360.0 - diff;
    EXPECT_LT(diff, 0.1);
  }
}

TEST(LatLng, ToStringFormat) {
  EXPECT_EQ((LatLng{37.5, -122.25}).ToString(), "(37.500000, -122.250000)");
}

}  // namespace
}  // namespace slim
