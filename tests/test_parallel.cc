#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace slim {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const size_t n = 10001;
  std::vector<std::atomic<int>> touched(n);
  ParallelFor(n, [&](size_t begin, size_t end, int) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroItemsIsANoop) {
  bool called = false;
  ParallelFor(0, [&](size_t, size_t, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<int> shards;
  ParallelFor(
      100, [&](size_t, size_t, int shard) { shards.push_back(shard); },
      /*threads=*/1);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], 0);
}

TEST(ParallelFor, ShardsAreContiguousAndOrdered) {
  const size_t n = 1000;
  const int threads = 4;
  std::vector<std::pair<size_t, size_t>> ranges(threads, {0, 0});
  ParallelFor(
      n,
      [&](size_t begin, size_t end, int shard) {
        ranges[static_cast<size_t>(shard)] = {begin, end};
      },
      threads);
  size_t covered = 0;
  for (const auto& [b, e] : ranges) covered += e - b;
  EXPECT_EQ(covered, n);
}

TEST(ParallelFor, PerShardAccumulatorsMergeDeterministically) {
  const size_t n = 5000;
  for (int threads : {1, 2, 3, 8}) {
    std::vector<long> sums(static_cast<size_t>(threads), 0);
    ParallelFor(
        n,
        [&](size_t begin, size_t end, int shard) {
          for (size_t i = begin; i < end; ++i) {
            sums[static_cast<size_t>(shard)] += static_cast<long>(i);
          }
        },
        threads);
    const long total = std::accumulate(sums.begin(), sums.end(), 0L);
    EXPECT_EQ(total, static_cast<long>(n * (n - 1) / 2)) << threads;
  }
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::atomic<int> count{0};
  ParallelFor(
      3, [&](size_t begin, size_t end, int) {
        count += static_cast<int>(end - begin);
      },
      /*threads=*/16);
  EXPECT_EQ(count.load(), 3);
}

TEST(DefaultThreadCount, IsPositiveAndBounded) {
  const int t = DefaultThreadCount();
  EXPECT_GE(t, 1);
  EXPECT_LE(t, 8);
}

}  // namespace
}  // namespace slim
