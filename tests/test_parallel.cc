#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace slim {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const size_t n = 10001;
  std::vector<std::atomic<int>> touched(n);
  ParallelFor(n, [&](size_t begin, size_t end, int) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroItemsIsANoop) {
  bool called = false;
  ParallelFor(0, [&](size_t, size_t, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<int> shards;
  ParallelFor(
      100, [&](size_t, size_t, int shard) { shards.push_back(shard); },
      /*threads=*/1);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], 0);
}

TEST(ParallelFor, ShardsAreContiguousAndOrdered) {
  const size_t n = 1000;
  const int threads = 4;
  std::vector<std::pair<size_t, size_t>> ranges(threads, {0, 0});
  ParallelFor(
      n,
      [&](size_t begin, size_t end, int shard) {
        ranges[static_cast<size_t>(shard)] = {begin, end};
      },
      threads);
  size_t covered = 0;
  for (const auto& [b, e] : ranges) covered += e - b;
  EXPECT_EQ(covered, n);
  // Shard k's range starts exactly where shard k-1 ended.
  for (int k = 1; k < threads; ++k) {
    EXPECT_EQ(ranges[static_cast<size_t>(k)].first,
              ranges[static_cast<size_t>(k - 1)].second)
        << "shard " << k;
  }
}

TEST(ParallelFor, PerShardAccumulatorsMergeDeterministically) {
  const size_t n = 5000;
  for (int threads : {1, 2, 3, 8}) {
    std::vector<long> sums(static_cast<size_t>(threads), 0);
    ParallelFor(
        n,
        [&](size_t begin, size_t end, int shard) {
          for (size_t i = begin; i < end; ++i) {
            sums[static_cast<size_t>(shard)] += static_cast<long>(i);
          }
        },
        threads);
    const long total = std::accumulate(sums.begin(), sums.end(), 0L);
    EXPECT_EQ(total, static_cast<long>(n * (n - 1) / 2)) << threads;
  }
}

// The shard partition is a function of (n, threads) alone, so concatenating
// per-shard accumulators in shard order must reproduce the sequential
// order — the property every pipeline stage's ordered merge relies on.
TEST(ParallelFor, ShardMergeInOrderReproducesSequentialOrder) {
  const size_t n = 1003;  // deliberately not divisible by the thread counts
  for (int threads : {2, 3, 4, 7}) {
    std::vector<std::vector<size_t>> per_shard(
        static_cast<size_t>(threads));
    ParallelFor(
        n,
        [&](size_t begin, size_t end, int shard) {
          for (size_t i = begin; i < end; ++i) {
            per_shard[static_cast<size_t>(shard)].push_back(i);
          }
        },
        threads);
    std::vector<size_t> merged;
    for (const auto& shard : per_shard) {
      merged.insert(merged.end(), shard.begin(), shard.end());
    }
    ASSERT_EQ(merged.size(), n) << threads;
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(merged[i], i) << threads;
  }
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::atomic<int> count{0};
  std::atomic<int> max_shard{-1};
  ParallelFor(
      3,
      [&](size_t begin, size_t end, int shard) {
        count += static_cast<int>(end - begin);
        int cur = max_shard.load();
        while (shard > cur && !max_shard.compare_exchange_weak(cur, shard)) {
        }
      },
      /*threads=*/16);
  EXPECT_EQ(count.load(), 3);
  // Shard indices stay inside [0, n) when n < threads.
  EXPECT_LT(max_shard.load(), 3);
}

TEST(ParallelFor, PropagatesExceptionsFromShards) {
  EXPECT_THROW(
      ParallelFor(
          1000,
          [](size_t begin, size_t, int) {
            if (begin == 0) throw std::runtime_error("shard failure");
          },
          4),
      std::runtime_error);
  // The shared pool survives a throwing job and runs the next one.
  std::atomic<int> count{0};
  ParallelFor(
      100, [&](size_t begin, size_t end, int) {
        count += static_cast<int>(end - begin);
      },
      4);
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  std::atomic<int> inner_total{0};
  ParallelFor(
      4,
      [&](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; ++i) {
          ParallelFor(
              10,
              [&](size_t b, size_t e, int) {
                inner_total += static_cast<int>(e - b);
              },
              4);
        }
      },
      4);
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(ThreadPool, RunsJobsAndIsReusable) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  for (int round = 0; round < 50; ++round) {
    std::vector<long> sums(3, 0);
    pool.Run(300, [&](size_t begin, size_t end, int shard) {
      for (size_t i = begin; i < end; ++i) {
        sums[static_cast<size_t>(shard)] += static_cast<long>(i);
      }
    });
    EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), 0L),
              300L * 299L / 2L)
        << round;
  }
}

TEST(ThreadPool, HonorsExplicitShardCountAboveItsSize) {
  // More shards than pool threads: every shard index still appears once.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> shard_runs(8);
  pool.Run(
      800,
      [&](size_t, size_t, int shard) {
        shard_runs[static_cast<size_t>(shard)].fetch_add(1);
      },
      /*shards=*/8);
  for (int s = 0; s < 8; ++s) EXPECT_EQ(shard_runs[s].load(), 1) << s;
}

TEST(DefaultThreadCount, IsPositive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

TEST(DefaultThreadCount, HonorsSlimThreadsEnv) {
  ASSERT_EQ(setenv("SLIM_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(DefaultThreadCount(), 3);
  // No silent cap: large explicit values are respected verbatim.
  ASSERT_EQ(setenv("SLIM_THREADS", "64", 1), 0);
  EXPECT_EQ(DefaultThreadCount(), 64);
  // Malformed / non-positive values fall back to the hardware count.
  ASSERT_EQ(setenv("SLIM_THREADS", "0", 1), 0);
  const int hw = DefaultThreadCount();
  EXPECT_GE(hw, 1);
  ASSERT_EQ(setenv("SLIM_THREADS", "banana", 1), 0);
  EXPECT_EQ(DefaultThreadCount(), hw);
  // Values past INT_MAX would overflow the cast; they are invalid too.
  ASSERT_EQ(setenv("SLIM_THREADS", "4294967296", 1), 0);
  EXPECT_EQ(DefaultThreadCount(), hw);
  ASSERT_EQ(setenv("SLIM_THREADS", "2147483648", 1), 0);
  EXPECT_EQ(DefaultThreadCount(), hw);
  ASSERT_EQ(unsetenv("SLIM_THREADS"), 0);
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace slim
