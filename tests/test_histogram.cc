#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace slim {
namespace {

TEST(Histogram, CountsFallInCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  h.Add(9.99);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinLow(4), 8.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(4), 9.0);
}

TEST(Histogram, FromValuesSpansData) {
  const Histogram h = Histogram::FromValues({2.0, 4.0, 6.0}, 4);
  EXPECT_DOUBLE_EQ(h.lo(), 2.0);
  EXPECT_DOUBLE_EQ(h.hi(), 6.0);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, FromValuesHandlesConstantData) {
  const Histogram h = Histogram::FromValues({5.0, 5.0}, 3);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.count(0), 2u);
}

TEST(Histogram, AsciiRenderingContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('\n'), std::string::npos);
}

TEST(Histogram, DiesOnInvalidConstruction) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 4), "hi > lo");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), ">= 1 bin");
}

}  // namespace
}  // namespace slim
