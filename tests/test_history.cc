#include "core/history.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace slim {
namespace {

constexpr int64_t kWindow = 900;

HistoryConfig Config(int level = 12) {
  HistoryConfig c;
  c.spatial_level = level;
  c.window_seconds = kWindow;
  return c;
}

TEST(MobilityHistory, EmptyRecords) {
  const MobilityHistory h =
      MobilityHistory::FromRecords(1, {}, Config());
  EXPECT_EQ(h.num_bins(), 0u);
  EXPECT_TRUE(h.windows().empty());
  EXPECT_TRUE(h.tree().empty());
  EXPECT_EQ(h.total_records(), 0u);
}

TEST(MobilityHistory, GroupsRecordsIntoBins) {
  const LatLng p{37.7, -122.4};
  std::vector<Record> recs = {
      {1, p, 100},   // window 0
      {1, p, 200},   // window 0, same cell -> same bin, count 2
      {1, p, 1000},  // window 1
  };
  const MobilityHistory h = MobilityHistory::FromRecords(1, recs, Config());
  EXPECT_EQ(h.num_bins(), 2u);
  EXPECT_EQ(h.total_records(), 3u);
  EXPECT_EQ(h.windows(), (std::vector<int64_t>{0, 1}));
  const auto w0 = h.BinsInWindow(0);
  ASSERT_EQ(w0.size(), 1u);
  EXPECT_EQ(w0[0].record_count, 2u);
  EXPECT_EQ(w0[0].cell, CellId::FromLatLng(p, 12));
}

TEST(MobilityHistory, DistinctCellsSameWindowAreDistinctBins) {
  std::vector<Record> recs = {
      {1, {37.70, -122.40}, 100},
      {1, {37.80, -122.50}, 200},  // far enough for a different level-12 cell
  };
  const MobilityHistory h = MobilityHistory::FromRecords(1, recs, Config());
  EXPECT_EQ(h.num_bins(), 2u);
  EXPECT_EQ(h.BinsInWindow(0).size(), 2u);
}

TEST(MobilityHistory, BinsSortedByWindowThenCell) {
  Rng rng(3);
  std::vector<Record> recs;
  for (int i = 0; i < 200; ++i) {
    recs.push_back({1, testing::RandomPointInBox(&rng),
                    rng.NextInt64(0, 50) * kWindow + 10});
  }
  const MobilityHistory h = MobilityHistory::FromRecords(1, recs, Config());
  for (size_t i = 1; i < h.bins().size(); ++i) {
    const auto& prev = h.bins()[i - 1];
    const auto& cur = h.bins()[i];
    EXPECT_TRUE(prev.window < cur.window ||
                (prev.window == cur.window && prev.cell < cur.cell));
  }
}

TEST(MobilityHistory, TreeAgreesWithBins) {
  Rng rng(4);
  std::vector<Record> recs;
  for (int i = 0; i < 100; ++i) {
    recs.push_back({1, testing::RandomPointInBox(&rng),
                    rng.NextInt64(0, 20) * kWindow + 5});
  }
  const MobilityHistory h = MobilityHistory::FromRecords(1, recs, Config());
  EXPECT_EQ(h.tree().total_records(), 100u);
  EXPECT_EQ(h.tree().num_windows(), h.windows().size());
}

TEST(MobilityHistory, UnoccupiedWindowYieldsEmptySpan) {
  std::vector<Record> recs = {{1, {37.7, -122.4}, 100}};
  const MobilityHistory h = MobilityHistory::FromRecords(1, recs, Config());
  EXPECT_TRUE(h.BinsInWindow(99).empty());
}

TEST(HistorySet, BuildsAllEntities) {
  LocationDataset ds("t");
  ds.Add(1, {37.7, -122.4}, 100);
  ds.Add(2, {37.7, -122.4}, 100);
  ds.Add(2, {37.7, -122.4}, 2000);
  ds.Finalize();
  const HistorySet set = HistorySet::Build(ds, Config());
  EXPECT_EQ(set.size(), 2u);
  ASSERT_NE(set.Find(1), nullptr);
  ASSERT_NE(set.Find(2), nullptr);
  EXPECT_EQ(set.Find(3), nullptr);
  EXPECT_EQ(set.Find(2)->num_bins(), 2u);
  EXPECT_DOUBLE_EQ(set.avg_bins_per_history(), 1.5);
}

TEST(HistorySet, BinEntityCounts) {
  const LatLng shared{37.70, -122.40};
  const LatLng lonely{37.80, -122.50};
  LocationDataset ds("t");
  ds.Add(1, shared, 100);
  ds.Add(2, shared, 200);
  ds.Add(3, shared, 300);
  ds.Add(3, lonely, 400);
  ds.Finalize();
  const HistorySet set = HistorySet::Build(ds, Config());
  const CellId shared_cell = CellId::FromLatLng(shared, 12);
  const CellId lonely_cell = CellId::FromLatLng(lonely, 12);
  EXPECT_EQ(set.BinEntityCount(0, shared_cell), 3u);
  EXPECT_EQ(set.BinEntityCount(0, lonely_cell), 1u);
  EXPECT_EQ(set.BinEntityCount(7, shared_cell), 0u);
}

TEST(HistorySet, IdfFormula) {
  const LatLng shared{37.70, -122.40};
  const LatLng lonely{37.80, -122.50};
  LocationDataset ds("t");
  ds.Add(1, shared, 100);
  ds.Add(2, shared, 200);
  ds.Add(3, shared, 300);
  ds.Add(3, lonely, 400);
  ds.Finalize();
  const HistorySet set = HistorySet::Build(ds, Config());
  const CellId shared_cell = CellId::FromLatLng(shared, 12);
  const CellId lonely_cell = CellId::FromLatLng(lonely, 12);
  // idf = log(N / holders): shared bin held by all 3 -> log(1) = 0.
  EXPECT_NEAR(set.Idf(0, shared_cell), 0.0, 1e-12);
  EXPECT_NEAR(set.Idf(0, lonely_cell), std::log(3.0), 1e-12);
  // Unknown bin gets the maximal idf log(N).
  EXPECT_NEAR(set.Idf(42, lonely_cell), std::log(3.0), 1e-12);
}

TEST(HistorySet, LengthNormBm25Shape) {
  LocationDataset ds("t");
  // Entity 1: 1 bin. Entity 2: 3 bins. Average = 2.
  ds.Add(1, {37.7, -122.4}, 100);
  ds.Add(2, {37.7, -122.4}, 100);
  ds.Add(2, {37.7, -122.4}, 1000);
  ds.Add(2, {37.7, -122.4}, 2000);
  ds.Finalize();
  const HistorySet set = HistorySet::Build(ds, Config());
  const MobilityHistory& h1 = *set.Find(1);
  const MobilityHistory& h2 = *set.Find(2);
  // b = 0: lengths ignored.
  EXPECT_DOUBLE_EQ(set.LengthNorm(h1, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(set.LengthNorm(h2, 0.0), 1.0);
  // b = 1: pure relative size.
  EXPECT_DOUBLE_EQ(set.LengthNorm(h1, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(set.LengthNorm(h2, 1.0), 1.5);
  // b = 0.5: halfway.
  EXPECT_DOUBLE_EQ(set.LengthNorm(h1, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(set.LengthNorm(h2, 0.5), 1.25);
}

// Property sweep: for any spatial level, total bin records equal dataset
// records, and bin cells carry the configured level.
class HistoryLevelProperty : public ::testing::TestWithParam<int> {};

TEST_P(HistoryLevelProperty, BinInvariantsHold) {
  const int level = GetParam();
  Rng rng(100 + static_cast<uint64_t>(level));
  LocationDataset ds("t");
  for (int e = 0; e < 5; ++e) {
    for (int i = 0; i < 50; ++i) {
      ds.Add(e, testing::RandomPointInBox(&rng),
             rng.NextInt64(0, 30) * kWindow + rng.NextInt64(0, kWindow - 1));
    }
  }
  ds.Finalize();
  const HistorySet set = HistorySet::Build(ds, Config(level));
  for (const auto& h : set.histories()) {
    uint64_t records = 0;
    for (const auto& bin : h.bins()) {
      EXPECT_EQ(bin.cell.level(), level);
      EXPECT_GT(bin.record_count, 0u);
      records += bin.record_count;
    }
    EXPECT_EQ(records, 50u);
    EXPECT_EQ(h.total_records(), 50u);
    // Bins per window sum to total bins.
    size_t bins_via_windows = 0;
    for (int64_t w : h.windows()) bins_via_windows += h.BinsInWindow(w).size();
    EXPECT_EQ(bins_via_windows, h.num_bins());
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, HistoryLevelProperty,
                         ::testing::Values(4, 8, 12, 16, 20, 24));

}  // namespace
}  // namespace slim
