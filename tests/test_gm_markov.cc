// Behavioural tests of the GM baseline's Markov transition term: entities
// with identical spatial footprints but different movement *order* must be
// distinguished by the transition model (the spatial GMM alone cannot tell
// them apart).
#include <gtest/gtest.h>

#include "baselines/gm.h"
#include "common/rng.h"

namespace slim {
namespace {

// Three sites ~10 km apart.
const LatLng kSiteA{37.70, -122.45};
const LatLng kSiteB{37.79, -122.45};
const LatLng kSiteC{37.70, -122.34};

// An entity cycling through `order` hourly, for `cycles` rounds, with a
// little spatial noise so the per-entity GMM has volume.
void AddCycler(LocationDataset* ds, EntityId id,
               const std::vector<LatLng>& order, int cycles, Rng* rng) {
  int64_t t = 0;
  for (int c = 0; c < cycles; ++c) {
    for (const LatLng& site : order) {
      const LatLng p = DestinationPoint(
          site, rng->NextDouble(0, 360),
          std::abs(rng->NextGaussian()) * 150.0);
      ds->Add(id, p, t);
      t += 3600;
    }
  }
}

GmConfig Config(double markov_weight) {
  GmConfig cfg;
  cfg.num_components = 3;
  cfg.markov_weight = markov_weight;
  // Default level-10 states are ~20 km cells — too coarse to separate the
  // 10 km test sites; level 13 (~2.4 km) puts each site in its own state.
  cfg.markov_level = 13;
  return cfg;
}

TEST(GmMarkov, TransitionOrderDisambiguatesEqualFootprints) {
  // Left: u0 cycles A->B->C, u1 cycles A->C->B (same places, different
  // order). Right: v0 cycles A->B->C, v1 cycles A->C->B.
  Rng rng(1);
  LocationDataset e("E"), i("I");
  AddCycler(&e, 0, {kSiteA, kSiteB, kSiteC}, 30, &rng);
  AddCycler(&e, 1, {kSiteA, kSiteC, kSiteB}, 30, &rng);
  AddCycler(&i, 0, {kSiteA, kSiteB, kSiteC}, 30, &rng);
  AddCycler(&i, 1, {kSiteA, kSiteC, kSiteB}, 30, &rng);
  e.Finalize();
  i.Finalize();

  const GmLinker linker(Config(/*markov_weight=*/2.0));
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Extract the four cross scores.
  double s00 = 0, s01 = 0, s10 = 0, s11 = 0;
  for (const auto& edge : r->graph.edges()) {
    if (edge.u == 0 && edge.v == 0) s00 = edge.weight;
    if (edge.u == 0 && edge.v == 1) s01 = edge.weight;
    if (edge.u == 1 && edge.v == 0) s10 = edge.weight;
    if (edge.u == 1 && edge.v == 1) s11 = edge.weight;
  }
  // Matching order beats mismatching order on both rows.
  EXPECT_GT(s00, s01);
  EXPECT_GT(s11, s10);
}

TEST(GmMarkov, ZeroMarkovWeightCannotDistinguishOrder) {
  Rng rng(2);
  LocationDataset e("E"), i("I");
  AddCycler(&e, 0, {kSiteA, kSiteB, kSiteC}, 30, &rng);
  AddCycler(&i, 0, {kSiteA, kSiteB, kSiteC}, 30, &rng);
  AddCycler(&i, 1, {kSiteA, kSiteC, kSiteB}, 30, &rng);
  e.Finalize();
  i.Finalize();

  const GmLinker spatial_only(Config(/*markov_weight=*/0.0));
  auto r = spatial_only.Link(e, i);
  ASSERT_TRUE(r.ok());
  double s00 = 0, s01 = 0;
  for (const auto& edge : r->graph.edges()) {
    if (edge.u == 0 && edge.v == 0) s00 = edge.weight;
    if (edge.u == 0 && edge.v == 1) s01 = edge.weight;
  }
  // Same spatial mass -> nearly equal scores without the transition term.
  EXPECT_NEAR(s00, s01, std::abs(s00) * 0.05 + 0.05);
}

TEST(GmMarkov, LinksCyclersByOrder) {
  Rng rng(3);
  LocationDataset e("E"), i("I");
  AddCycler(&e, 0, {kSiteA, kSiteB, kSiteC}, 40, &rng);
  AddCycler(&e, 1, {kSiteA, kSiteC, kSiteB}, 40, &rng);
  AddCycler(&i, 7, {kSiteA, kSiteB, kSiteC}, 40, &rng);
  AddCycler(&i, 8, {kSiteA, kSiteC, kSiteB}, 40, &rng);
  e.Finalize();
  i.Finalize();
  const GmLinker linker(Config(2.0));
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok());
  // Greedy matching over the scores must pair by order: 0-7 and 1-8.
  bool found_07 = false, found_18 = false;
  for (const auto& link : r->links) {
    found_07 |= (link.u == 0 && link.v == 7);
    found_18 |= (link.u == 1 && link.v == 8);
    EXPECT_FALSE(link.u == 0 && link.v == 8);
    EXPECT_FALSE(link.u == 1 && link.v == 7);
  }
  // The stop threshold may trim, but whatever is linked must be by order;
  // at least one of the correct pairs should survive.
  EXPECT_TRUE(found_07 || found_18);
}

}  // namespace
}  // namespace slim
