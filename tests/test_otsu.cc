#include "stats/otsu.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace slim {
namespace {

TEST(Otsu, SeparatesTwoClusters) {
  Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.NextGaussian());
  for (int i = 0; i < 500; ++i) v.push_back(30.0 + rng.NextGaussian());
  const double t = OtsuThreshold(v);
  EXPECT_GT(t, 5.0);
  EXPECT_LT(t, 25.0);
}

TEST(Otsu, UnbalancedClusters) {
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 900; ++i) v.push_back(rng.NextGaussian());
  for (int i = 0; i < 100; ++i) v.push_back(50.0 + rng.NextGaussian());
  const double t = OtsuThreshold(v);
  EXPECT_GT(t, 5.0);
  EXPECT_LT(t, 45.0);
}

TEST(Otsu, TwoValueInputSplitsBetween) {
  std::vector<double> v = {0.0, 0.0, 0.0, 10.0, 10.0};
  const double t = OtsuThreshold(v);
  EXPECT_GT(t, 0.0);
  EXPECT_LE(t, 10.0);
}

TEST(Otsu, DiesOnDegenerateInput) {
  EXPECT_DEATH(OtsuThreshold({1.0}), ">= 2 values");
  EXPECT_DEATH(OtsuThreshold({2.0, 2.0}), "distinct");
}

TEST(Otsu, ThresholdWithinDataRange) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.NextDouble(-5.0, 5.0));
  const double t = OtsuThreshold(v);
  EXPECT_GE(t, -5.0);
  EXPECT_LE(t, 5.0);
}

}  // namespace
}  // namespace slim
