#include "core/tuning.h"

#include <gtest/gtest.h>

#include "data/cab_generator.h"
#include "test_util.h"

namespace slim {
namespace {

LocationDataset SmallCab(uint64_t seed = 42) {
  CabGeneratorOptions opt;
  opt.num_taxis = 25;
  opt.duration_days = 1.0;
  opt.record_interval_seconds = 300.0;
  opt.seed = seed;
  return GenerateCabDataset(opt);
}

TuningOptions FastOptions() {
  TuningOptions opt;
  opt.candidate_levels = {4, 6, 8, 10, 12, 14, 16};
  opt.sample_entities = 8;
  opt.partners_per_entity = 4;
  return opt;
}

TEST(Tuning, RejectsBadLevelLists) {
  const LocationDataset ds = SmallCab();
  TuningOptions opt = FastOptions();
  opt.candidate_levels = {4, 6};
  EXPECT_FALSE(AutoTuneSpatialLevel(ds, opt).ok());
  opt.candidate_levels = {4, 4, 6};
  EXPECT_FALSE(AutoTuneSpatialLevel(ds, opt).ok());
  opt.candidate_levels = {8, 6, 4};
  EXPECT_FALSE(AutoTuneSpatialLevel(ds, opt).ok());
}

TEST(Tuning, RejectsTinyDatasets) {
  LocationDataset ds("one");
  ds.Add(1, {37.7, -122.4}, 100);
  ds.Finalize();
  EXPECT_FALSE(AutoTuneSpatialLevel(ds, FastOptions()).ok());
}

TEST(Tuning, RatioCurveDecreasesWithSpatialDetail) {
  // Coarse grids make everyone look alike (ratio near 1); fine grids
  // separate entities (ratio drops). The probe curve must reflect that.
  const LocationDataset ds = SmallCab();
  auto r = AutoTuneSpatialLevel(ds, FastOptions());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->curve.size(), 7u);
  EXPECT_GT(r->curve.front().avg_ratio, r->curve.back().avg_ratio);
  // Coarsest level: nearly indistinguishable.
  EXPECT_GT(r->curve.front().avg_ratio, 0.5);
}

TEST(Tuning, SelectedLevelIsACandidate) {
  const LocationDataset ds = SmallCab();
  const TuningOptions opt = FastOptions();
  auto r = AutoTuneSpatialLevel(ds, opt);
  ASSERT_TRUE(r.ok());
  bool found = false;
  for (int lvl : opt.candidate_levels) found |= (lvl == r->selected_level);
  EXPECT_TRUE(found);
}

TEST(Tuning, SelectedLevelSitsPastTheSteepDrop) {
  const LocationDataset ds = SmallCab();
  auto r = AutoTuneSpatialLevel(ds, FastOptions());
  ASSERT_TRUE(r.ok());
  // The selected level should not be the coarsest candidate: the curve
  // still falls steeply there.
  EXPECT_GT(r->selected_level, 4);
}

TEST(Tuning, DeterministicForSeed) {
  const LocationDataset ds = SmallCab();
  auto r1 = AutoTuneSpatialLevel(ds, FastOptions());
  auto r2 = AutoTuneSpatialLevel(ds, FastOptions());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->selected_level, r2->selected_level);
  for (size_t k = 0; k < r1->curve.size(); ++k) {
    EXPECT_DOUBLE_EQ(r1->curve[k].avg_ratio, r2->curve[k].avg_ratio);
  }
}

TEST(Tuning, PairTakesTheHigherElbow) {
  const LocationDataset a = SmallCab(1);
  const LocationDataset b = SmallCab(2);
  const TuningOptions opt = FastOptions();
  auto ra = AutoTuneSpatialLevel(a, opt);
  auto rb = AutoTuneSpatialLevel(b, opt);
  auto pair_level = AutoTuneSpatialLevelForPair(a, b, opt);
  ASSERT_TRUE(ra.ok() && rb.ok() && pair_level.ok());
  EXPECT_EQ(*pair_level, std::max(ra->selected_level, rb->selected_level));
}

}  // namespace
}  // namespace slim
