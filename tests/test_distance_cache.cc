#include "geo/distance_cache.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace slim {
namespace {

TEST(DistanceCache, AgreesWithDirectComputation) {
  CellDistanceCache cache;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const CellId a = CellId::FromLatLng(
        {rng.NextDouble(-80, 80), rng.NextDouble(-170, 170)}, 12);
    const CellId b = CellId::FromLatLng(
        {rng.NextDouble(-80, 80), rng.NextDouble(-170, 170)}, 12);
    EXPECT_DOUBLE_EQ(cache.Get(a, b), MinDistanceMeters(a, b));
  }
}

TEST(DistanceCache, HitsOnRepeatAndSwappedArguments) {
  CellDistanceCache cache;
  const CellId a = CellId::FromLatLng({37.7, -122.4}, 12);
  const CellId b = CellId::FromLatLng({38.6, -122.4}, 12);
  const double d1 = cache.Get(a, b);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  const double d2 = cache.Get(b, a);  // symmetric key
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DistanceCache, CapacityBoundsStorage) {
  CellDistanceCache cache(/*capacity=*/4);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const CellId a = CellId::FromIndices(12, static_cast<uint64_t>(i), 7);
    const CellId b = CellId::FromIndices(12, 100, static_cast<uint64_t>(i));
    cache.Get(a, b);
  }
  EXPECT_LE(cache.size(), 4u);
  // Still computes correctly past capacity.
  const CellId a = CellId::FromIndices(12, 49, 7);
  const CellId b = CellId::FromIndices(12, 100, 49);
  EXPECT_DOUBLE_EQ(cache.Get(a, b), MinDistanceMeters(a, b));
}

TEST(DistanceCache, ZeroCapacityDisablesStorage) {
  CellDistanceCache cache(0);
  const CellId a = CellId::FromLatLng({10, 10}, 10);
  const CellId b = CellId::FromLatLng({11, 11}, 10);
  cache.Get(a, b);
  cache.Get(a, b);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

}  // namespace
}  // namespace slim
