#include "stats/kmeans.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace slim {
namespace {

TEST(KMeans1D, SeparatesTwoObviousClusters) {
  std::vector<double> v;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) v.push_back(rng.NextGaussian() * 0.5);
  for (int i = 0; i < 100; ++i) v.push_back(10.0 + rng.NextGaussian() * 0.5);
  const KMeans1DResult r = KMeans1D(v, 2);
  ASSERT_EQ(r.centers.size(), 2u);
  EXPECT_NEAR(r.centers[0], 0.0, 0.3);
  EXPECT_NEAR(r.centers[1], 10.0, 0.3);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.cluster_size[0], 100u);
  EXPECT_EQ(r.cluster_size[1], 100u);
}

TEST(KMeans1D, CentersSortedAscending) {
  std::vector<double> v = {5, 5, 5, 1, 1, 1, 9, 9, 9};
  const KMeans1DResult r = KMeans1D(v, 3);
  ASSERT_EQ(r.centers.size(), 3u);
  EXPECT_LT(r.centers[0], r.centers[1]);
  EXPECT_LT(r.centers[1], r.centers[2]);
}

TEST(KMeans1D, AssignmentsMatchNearestCenter) {
  std::vector<double> v = {0.0, 0.1, 10.0, 10.1, 0.2};
  const KMeans1DResult r = KMeans1D(v, 2);
  EXPECT_EQ(r.assignment[0], 0);
  EXPECT_EQ(r.assignment[1], 0);
  EXPECT_EQ(r.assignment[2], 1);
  EXPECT_EQ(r.assignment[3], 1);
  EXPECT_EQ(r.assignment[4], 0);
}

TEST(KMeans1D, KClampedToDistinctValues) {
  std::vector<double> v = {1.0, 1.0, 2.0};
  const KMeans1DResult r = KMeans1D(v, 5);
  EXPECT_LE(r.centers.size(), 2u);
}

TEST(KMeans1D, SingleCluster) {
  std::vector<double> v = {3.0, 3.5, 4.0};
  const KMeans1DResult r = KMeans1D(v, 1);
  ASSERT_EQ(r.centers.size(), 1u);
  EXPECT_NEAR(r.centers[0], 3.5, 1e-9);
}

TEST(TwoMeansThreshold, FallsBetweenClusters) {
  std::vector<double> v;
  Rng rng(2);
  for (int i = 0; i < 50; ++i) v.push_back(rng.NextGaussian());
  for (int i = 0; i < 50; ++i) v.push_back(20.0 + rng.NextGaussian());
  const double t = TwoMeansThreshold(v);
  EXPECT_GT(t, 5.0);
  EXPECT_LT(t, 15.0);
}

TEST(KMeans1D, DiesOnEmptyInput) {
  EXPECT_DEATH(KMeans1D({}, 2), "requires values");
}

}  // namespace
}  // namespace slim
