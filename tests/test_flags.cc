#include "../tools/flags.h"

#include <gtest/gtest.h>

namespace slim::tools {
namespace {

Flags Make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, ParsesEqualsForm) {
  const Flags f = Make({"--a=x", "--n=42", "--p=0.5"});
  EXPECT_EQ(f.GetString("a", ""), "x");
  EXPECT_EQ(f.GetInt("n", 0), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("p", 0.0), 0.5);
}

TEST(Flags, ParsesSpaceForm) {
  const Flags f = Make({"--a", "hello", "--n", "7"});
  EXPECT_EQ(f.GetString("a", ""), "hello");
  EXPECT_EQ(f.GetInt("n", 0), 7);
}

TEST(Flags, BooleanFlagWithoutValue) {
  const Flags f = Make({"--verbose", "--out=x.csv"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_TRUE(f.Has("verbose"));
  EXPECT_FALSE(f.GetBool("quiet", false));
}

TEST(Flags, BooleanValueSpellings) {
  EXPECT_TRUE(Make({"--x=true"}).GetBool("x", false));
  EXPECT_TRUE(Make({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(Make({"--x=yes"}).GetBool("x", false));
  EXPECT_FALSE(Make({"--x=no"}).GetBool("x", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = Make({});
  EXPECT_EQ(f.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(f.GetInt("missing", -5), -5);
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 2.5), 2.5);
}

TEST(Flags, PositionalArgumentsCollected) {
  const Flags f = Make({"input.csv", "--n=1", "more.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "more.csv");
}

TEST(Flags, LastDuplicateWins) {
  const Flags f = Make({"--n=1", "--n=2"});
  EXPECT_EQ(f.GetInt("n", 0), 2);
}

TEST(Flags, BadIntegerExitsWithError) {
  const Flags f = Make({"--n=abc"});
  EXPECT_EXIT((void)f.GetInt("n", 0), ::testing::ExitedWithCode(2),
              "expects an integer");
}

TEST(Flags, NegativeNumbersViaEqualsForm) {
  const Flags f = Make({"--n=-3", "--p=-1.5"});
  EXPECT_EQ(f.GetInt("n", 0), -3);
  EXPECT_DOUBLE_EQ(f.GetDouble("p", 0.0), -1.5);
}

}  // namespace
}  // namespace slim::tools
