#include "data/csv.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace slim {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test AND per process: ctest runs each TEST in its own
    // process, potentially in parallel.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("slim_csv_" + std::string(info->name()) + "_" +
            std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, RoundTripPreservesRecords) {
  LocationDataset ds("rt");
  ds.Add(1, {37.774900, -122.419400}, 1000);
  ds.Add(2, {-33.856800, 151.215300}, 2000);
  ds.Add(1, {37.775000, -122.419000}, 1500);
  ds.Finalize();

  const std::string path = Path("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(ds, path).ok());

  auto loaded = ReadCsv(path, "rt2");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_records(), 3u);
  EXPECT_EQ(loaded->num_entities(), 2u);
  const auto span = loaded->RecordsOf(1);
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0].timestamp, 1000);
  EXPECT_NEAR(span[0].location.lat_deg, 37.7749, 1e-6);
  EXPECT_NEAR(span[0].location.lng_deg, -122.4194, 1e-6);
}

TEST_F(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsv(Path("nope.csv"), "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, MalformedRowReportsLineNumber) {
  const std::string path = Path("bad.csv");
  {
    std::ofstream out(path);
    out << "entity_id,lat,lng,timestamp\n";
    out << "1,37.0,-122.0,100\n";
    out << "2,not_a_number,-122.0,100\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(":3"), std::string::npos)
      << r.status().message();
}

TEST_F(CsvTest, WrongFieldCountFails) {
  const std::string path = Path("fields.csv");
  {
    std::ofstream out(path);
    out << "1,37.0,-122.0\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, HeaderIsOptional) {
  const std::string path = Path("noheader.csv");
  {
    std::ofstream out(path);
    out << "5,10.5,20.5,42\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_records(), 1u);
  EXPECT_EQ(r->records()[0].entity, 5);
}

TEST_F(CsvTest, BlankLinesAreSkipped) {
  const std::string path = Path("blank.csv");
  {
    std::ofstream out(path);
    out << "entity_id,lat,lng,timestamp\n\n";
    out << "1,1.0,1.0,1\n\n";
    out << "2,2.0,2.0,2\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_records(), 2u);
}

TEST_F(CsvTest, EmptyFileYieldsEmptyDataset) {
  const std::string path = Path("empty.csv");
  { std::ofstream out(path); }
  auto r = ReadCsv(path, "x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_records(), 0u);
}

TEST_F(CsvTest, WriteToUnwritablePathFails) {
  LocationDataset ds("w");
  ds.Finalize();
  EXPECT_FALSE(WriteCsv(ds, "/nonexistent_dir_xyz/out.csv").ok());
}

}  // namespace
}  // namespace slim
