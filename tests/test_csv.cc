#include "data/csv.h"

#include <clocale>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"

namespace slim {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test AND per process: ctest runs each TEST in its own
    // process, potentially in parallel.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("slim_csv_" + std::string(info->name()) + "_" +
            std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, RoundTripPreservesRecords) {
  LocationDataset ds("rt");
  ds.Add(1, {37.774900, -122.419400}, 1000);
  ds.Add(2, {-33.856800, 151.215300}, 2000);
  ds.Add(1, {37.775000, -122.419000}, 1500);
  ds.Finalize();

  const std::string path = Path("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(ds, path).ok());

  auto loaded = ReadCsv(path, "rt2");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_records(), 3u);
  EXPECT_EQ(loaded->num_entities(), 2u);
  const auto span = loaded->RecordsOf(1);
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0].timestamp, 1000);
  EXPECT_NEAR(span[0].location.lat_deg, 37.7749, 1e-6);
  EXPECT_NEAR(span[0].location.lng_deg, -122.4194, 1e-6);
}

TEST_F(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsv(Path("nope.csv"), "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, MalformedRowReportsLineNumber) {
  const std::string path = Path("bad.csv");
  {
    std::ofstream out(path);
    out << "entity_id,lat,lng,timestamp\n";
    out << "1,37.0,-122.0,100\n";
    out << "2,not_a_number,-122.0,100\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(":3"), std::string::npos)
      << r.status().message();
}

TEST_F(CsvTest, WrongFieldCountFails) {
  const std::string path = Path("fields.csv");
  {
    std::ofstream out(path);
    out << "1,37.0,-122.0\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, HeaderIsOptional) {
  const std::string path = Path("noheader.csv");
  {
    std::ofstream out(path);
    out << "5,10.5,20.5,42\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_records(), 1u);
  EXPECT_EQ(r->records()[0].entity, 5);
}

TEST_F(CsvTest, BlankLinesAreSkipped) {
  const std::string path = Path("blank.csv");
  {
    std::ofstream out(path);
    out << "entity_id,lat,lng,timestamp\n\n";
    out << "1,1.0,1.0,1\n\n";
    out << "2,2.0,2.0,2\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_records(), 2u);
}

TEST_F(CsvTest, EmptyFileYieldsEmptyDataset) {
  const std::string path = Path("empty.csv");
  { std::ofstream out(path); }
  auto r = ReadCsv(path, "x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_records(), 0u);
}

TEST_F(CsvTest, WriteToUnwritablePathFails) {
  LocationDataset ds("w");
  ds.Finalize();
  EXPECT_FALSE(WriteCsv(ds, "/nonexistent_dir_xyz/out.csv").ok());
}

TEST_F(CsvTest, HeaderAfterLeadingBlankLinesIsSkipped) {
  const std::string path = Path("blank_header.csv");
  {
    std::ofstream out(path);
    out << "\n  \n";
    out << "entity_id,lat,lng,timestamp\n";
    out << "1,1.0,1.0,1\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_records(), 1u);
}

TEST_F(CsvTest, Utf8BomBeforeHeaderIsStripped) {
  const std::string path = Path("bom.csv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "\xEF\xBB\xBF" << "entity_id,lat,lng,timestamp\n";
    out << "7,2.5,-3.5,99\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_records(), 1u);
  EXPECT_EQ(r->records()[0].entity, 7);
}

TEST_F(CsvTest, Utf8BomBeforeDataIsStripped) {
  const std::string path = Path("bom_data.csv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "\xEF\xBB\xBF" << "7,2.5,-3.5,99\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_records(), 1u);
}

TEST_F(CsvTest, RejectsLongitudeBeyond180) {
  // The seed accepted |lng| <= 360 and silently wrapped; 200 must now be
  // an out-of-range error naming the line.
  const std::string path = Path("lng200.csv");
  {
    std::ofstream out(path);
    out << "1,10.0,200.0,5\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(r.status().message().find(":1:"), std::string::npos)
      << r.status().message();
}

TEST_F(CsvTest, RejectsLatitudeBeyond90) {
  const std::string path = Path("lat91.csv");
  {
    std::ofstream out(path);
    out << "1,91.0,0.0,5\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST_F(CsvTest, AcceptsBoundaryCoordinates) {
  const std::string path = Path("bounds.csv");
  {
    std::ofstream out(path);
    out << "1,90.0,180.0,1\n";
    out << "2,-90.0,-180.0,2\n";
  }
  auto r = ReadCsv(path, "x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_records(), 2u);
  // lng 180 normalizes onto the antimeridian's canonical side.
  EXPECT_DOUBLE_EQ(r->records()[0].location.lng_deg, -180.0);
}

TEST_F(CsvTest, RejectsNonFiniteCoordinates) {
  for (const char* row :
       {"1,nan,0.0,5\n", "1,0.0,inf,5\n", "1,-inf,0.0,5\n"}) {
    const std::string path = Path("nonfinite.csv");
    {
      std::ofstream out(path);
      out << row;
    }
    auto r = ReadCsv(path, "x");
    ASSERT_FALSE(r.ok()) << row;
    EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange) << row;
    EXPECT_NE(r.status().message().find("non-finite"), std::string::npos)
        << r.status().message();
  }
}

// Writes a dataset of n random records (1e-7-quantized so the CSV form is
// exact) interleaved with blank lines and stray whitespace.
std::string WriteMessyCsv(const std::string& path, size_t n) {
  Rng rng(415);
  std::ofstream out(path);
  out << "\n";
  out << "entity_id,lat,lng,timestamp\n";
  for (size_t i = 0; i < n; ++i) {
    const double lat =
        std::round(rng.NextDouble(-90.0, 90.0) * 1e7) / 1e7;
    const double lng =
        std::round(rng.NextDouble(-180.0, 180.0) * 1e7) / 1e7;
    out << (i % 7 == 0 ? "  " : "") << i % 97 << ','
        << StrFormat("%.7f", lat) << ',' << StrFormat("%.7f", lng) << ','
        << 1000 + i << (i % 5 == 0 ? " \n" : "\n");
    if (i % 13 == 0) out << "\n";
  }
  return path;
}

TEST_F(CsvTest, ParallelParseIsBitIdenticalAtEveryThreadCount) {
  const std::string path = WriteMessyCsv(Path("parallel.csv"), 3000);
  CsvReadOptions serial;
  serial.io_threads = 1;
  auto reference = ReadCsv(path, "ref", serial);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->num_records(), 3000u);

  for (const int threads : {2, 8}) {
    CsvReadOptions opt;
    opt.io_threads = threads;
    opt.min_chunk_bytes = 256;  // force many chunks on this small file
    auto parallel = ReadCsv(path, "par", opt);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->records(), reference->records())
        << "thread count " << threads;
  }
}

TEST_F(CsvTest, ParallelParseReportsEarliestErrorLine) {
  const std::string path = Path("parallel_err.csv");
  {
    std::ofstream out(path);
    out << "entity_id,lat,lng,timestamp\n";
    for (int i = 0; i < 200; ++i) {
      if (i == 60) {
        out << "oops,not,a,record,at,all\n";  // line 62: wrong field count
      } else if (i == 150) {
        out << "1,999.0,0.0,1\n";  // later error must not win
      } else {
        out << i << ",1.0,1.0," << i << "\n";
      }
    }
  }
  CsvReadOptions opt;
  opt.io_threads = 8;
  opt.min_chunk_bytes = 64;
  auto r = ReadCsv(path, "x", opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find(path + ":62:"), std::string::npos)
      << r.status().message();
}

TEST_F(CsvTest, MalformedFieldErrorsKeepPathLineContextInParallelMode) {
  const std::string path = Path("ctx.csv");
  {
    std::ofstream out(path);
    for (int i = 0; i < 100; ++i) out << i << ",1.0,1.0," << i << "\n";
    out << "101,bogus,1.0,7\n";  // line 101
  }
  CsvReadOptions opt;
  opt.io_threads = 4;
  opt.min_chunk_bytes = 64;
  auto r = ReadCsv(path, "x", opt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(path + ":101:"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("malformed record"), std::string::npos);
}

TEST_F(CsvTest, ReadsFromNonSeekablePipe) {
  // Process substitution / FIFO inputs must keep working even though the
  // chunked reader sizes seekable files up front.
  const std::string fifo = Path("pipe.csv");
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);
  std::thread writer([&] {
    std::ofstream out(fifo);  // blocks until the reader opens
    out << "entity_id,lat,lng,timestamp\n";
    out << "1,37.0,-122.0,100\n";
    out << "2,37.5,-122.5,200\n";
  });
  auto r = ReadCsv(fifo, "pipe");
  writer.join();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_records(), 2u);
}

// Locale regression (the seed's WriteCsv/ReadCsv honored the global C
// locale, so a comma-decimal locale corrupted output and rejected valid
// input). The fixed paths use to_chars/from_chars and must round-trip no
// matter what the process locale is.
TEST_F(CsvTest, RoundTripSurvivesCommaDecimalLocale) {
  const char* comma_locales[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                                 "fr_FR.UTF-8", "fr_FR.utf8"};
  const char* active = nullptr;
  for (const char* name : comma_locales) {
    // slim-lint: allow(SLIM-DET-004, this IS the locale regression test)
    if (std::setlocale(LC_ALL, name) != nullptr) {
      active = name;
      break;
    }
  }
  if (active == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed in this environment";
  }
  // Confirm the locale really uses a comma decimal point, then prove the
  // CSV layer is immune to it.
  char probe[32];
  std::snprintf(probe, sizeof(probe), "%.1f", 1.5);
  const bool comma_locale = std::string(probe) == "1,5";

  LocationDataset ds("locale");
  ds.Add(1, {37.7749000, -122.4194000}, 1000);
  ds.Add(2, {-33.8568000, 151.2153000}, 2000);
  ds.Add(1, {-0.0000001, 0.0000001}, 1500);
  ds.Finalize();
  const std::string path = Path("locale.csv");
  const Status ws = WriteCsv(ds, path);
  auto loaded = ReadCsv(path, "locale2");

  // Every written line must use '.'-decimals and exactly 3 commas (the
  // field separators), even under the comma locale.
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  size_t data_lines = 0;
  bool separators_ok = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++data_lines;
    size_t commas = 0;
    for (const char c : line) commas += c == ',';
    separators_ok = separators_ok && commas == 3 &&
                    line.find('.') != std::string::npos;
  }
  // slim-lint: allow(SLIM-DET-004, restores the locale the test flipped)
  std::setlocale(LC_ALL, "C");  // restore before asserting

  ASSERT_TRUE(comma_locale) << "locale " << active
                            << " does not use comma decimals";
  ASSERT_TRUE(ws.ok()) << ws.ToString();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(data_lines, 3u);
  EXPECT_TRUE(separators_ok);
  EXPECT_EQ(loaded->records(), ds.records());
}

}  // namespace
}  // namespace slim
