// Property tests of the incremental linkage engine: after any sequence of
// Ingest/LinkEpoch calls, the epoch's links, matching, graph, and
// threshold must be BIT-identical to a from-scratch batch link over the
// union of everything ingested — at every thread count and with every
// candidate generator. This is the contract slim_serve's byte-compare CI
// step rests on (docs/SERVING.md).
#include "core/incremental.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/slim.h"
#include "data/cab_generator.h"
#include "data/sampler.h"

namespace slim {
namespace {

const LocationDataset& CabMaster() {
  static const LocationDataset ds = [] {
    CabGeneratorOptions opt;
    opt.num_taxis = 36;
    opt.duration_days = 1.5;
    opt.record_interval_seconds = 360.0;
    return GenerateCabDataset(opt);
  }();
  return ds;
}

LinkedPairSample CabSample(uint64_t seed = 11) {
  PairSampleOptions opt;
  opt.entities_per_side = 18;
  opt.intersection_ratio = 0.5;
  opt.inclusion_probability = 0.5;
  opt.seed = seed;
  auto s = SampleLinkedPair(CabMaster(), opt);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(s.value());
}

SlimConfig MakeConfig(CandidateKind candidates, int threads) {
  SlimConfig c;
  c.candidates = candidates;
  c.lsh.signature_spatial_level = 10;
  c.lsh.temporal_step_windows = 8;
  c.lsh.similarity_threshold = 0.4;
  c.threads = threads;
  return c;
}

/// Splits a record vector into `parts` slices by timestamp rank, so later
/// epochs both extend existing entities and introduce brand-new ones
/// (entities whose activity starts late).
std::vector<std::vector<Record>> SplitByTime(const std::vector<Record>& all,
                                             int parts) {
  std::vector<Record> sorted = all;
  std::sort(sorted.begin(), sorted.end(),
            [](const Record& a, const Record& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              if (a.entity != b.entity) return a.entity < b.entity;
              return a.location.lng_deg < b.location.lng_deg;
            });
  std::vector<std::vector<Record>> out(parts);
  const size_t per = (sorted.size() + parts - 1) / parts;
  for (size_t i = 0; i < sorted.size(); ++i) {
    out[std::min<size_t>(i / per, parts - 1)].push_back(sorted[i]);
  }
  return out;
}

LinkageResult BatchLink(const SlimConfig& config,
                        const std::vector<Record>& a,
                        const std::vector<Record>& b) {
  const SlimLinker linker(config);
  auto r = linker.Link(LocationDataset::FromRecords("A", a),
                       LocationDataset::FromRecords("B", b));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r.value());
}

/// The bit-identity surfaces: links, matching, graph, threshold. Exact
/// double comparison throughout — "close" is a bug here.
void ExpectBitIdentical(const LinkageResult& inc, const LinkageResult& batch,
                        const char* what) {
  EXPECT_EQ(inc.links, batch.links) << what;
  EXPECT_EQ(inc.matching.pairs, batch.matching.pairs) << what;
  EXPECT_EQ(inc.matching.total_weight, batch.matching.total_weight) << what;
  EXPECT_EQ(inc.graph.edges(), batch.graph.edges()) << what;
  EXPECT_EQ(inc.threshold_valid, batch.threshold_valid) << what;
  if (inc.threshold_valid && batch.threshold_valid) {
    EXPECT_EQ(inc.threshold.threshold, batch.threshold.threshold) << what;
  }
  EXPECT_EQ(inc.candidate_pairs, batch.candidate_pairs) << what;
}

struct IncrementalCase {
  CandidateKind candidates;
  int threads;
};

class IncrementalEqualsBatch
    : public ::testing::TestWithParam<IncrementalCase> {};

// The tentpole property: every epoch of a three-epoch ingest schedule is
// bit-identical to the from-scratch batch link over the union so far.
TEST_P(IncrementalEqualsBatch, EpochsMatchBatchOnUnion) {
  const IncrementalCase param = GetParam();
  const SlimConfig config = MakeConfig(param.candidates, param.threads);
  const LinkedPairSample s = CabSample();
  const auto parts_a = SplitByTime(s.a.records(), 3);
  const auto parts_b = SplitByTime(s.b.records(), 3);

  IncrementalLinker linker(config);
  std::vector<Record> union_a, union_b;
  for (int e = 0; e < 3; ++e) {
    union_a.insert(union_a.end(), parts_a[e].begin(), parts_a[e].end());
    union_b.insert(union_b.end(), parts_b[e].begin(), parts_b[e].end());
    linker.Ingest(LinkageSide::kE, parts_a[e]);
    linker.Ingest(LinkageSide::kI, parts_b[e]);
    auto epoch = linker.LinkEpoch();
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    EXPECT_EQ(epoch->epoch, e + 1);
    const LinkageResult batch = BatchLink(config, union_a, union_b);
    ExpectBitIdentical(epoch->linkage, batch,
                       ("epoch " + std::to_string(e + 1)).c_str());
    EXPECT_EQ(linker.links(), batch.links);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGeneratorsAndThreads, IncrementalEqualsBatch,
    ::testing::Values(IncrementalCase{CandidateKind::kLsh, 1},
                      IncrementalCase{CandidateKind::kLsh, 8},
                      IncrementalCase{CandidateKind::kBruteForce, 1},
                      IncrementalCase{CandidateKind::kBruteForce, 8},
                      IncrementalCase{CandidateKind::kGrid, 1},
                      IncrementalCase{CandidateKind::kGrid, 8}),
    [](const ::testing::TestParamInfo<IncrementalCase>& info) {
      return std::string(CandidateKindName(info.param.candidates)) +
             "_threads" + std::to_string(info.param.threads);
    });

// One-sided epochs (only A ingested, B empty) must behave like the batch
// path on an empty side: zero links, no crash, and the records must show
// up once the other side arrives.
TEST(Incremental, EmptySideEpochsAreEmptyAndRecoverable) {
  const SlimConfig config = MakeConfig(CandidateKind::kBruteForce, 2);
  const LinkedPairSample s = CabSample();

  IncrementalLinker linker(config);
  linker.Ingest(LinkageSide::kE, s.a.records());
  auto first = linker.LinkEpoch();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->linkage.links.empty());

  linker.Ingest(LinkageSide::kI, s.b.records());
  auto second = linker.LinkEpoch();
  ASSERT_TRUE(second.ok());
  const LinkageResult batch =
      BatchLink(config, s.a.records(), s.b.records());
  ExpectBitIdentical(second->linkage, batch, "after B arrives");
  EXPECT_EQ(second->added_links, batch.links);
  EXPECT_TRUE(second->removed_links.empty());
}

// An epoch with nothing buffered re-seals the previous state: identical
// links, zero fresh scores, everything served from the cache.
TEST(Incremental, EmptyEpochReusesEveryPair) {
  const SlimConfig config = MakeConfig(CandidateKind::kLsh, 2);
  const LinkedPairSample s = CabSample();

  IncrementalLinker linker(config);
  linker.Ingest(LinkageSide::kE, s.a.records());
  linker.Ingest(LinkageSide::kI, s.b.records());
  auto first = linker.LinkEpoch();
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->linkage.links.empty());

  auto second = linker.LinkEpoch();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->linkage.links, first->linkage.links);
  EXPECT_EQ(second->incremental.pairs_scored, 0u);
  EXPECT_GT(second->incremental.pairs_reused, 0u);
  EXPECT_FALSE(second->incremental.rescored_all);
  EXPECT_TRUE(second->added_links.empty());
  EXPECT_TRUE(second->removed_links.empty());
}

// Pure count increments — duplicating records an entity already has, so
// no new entity and no new (entity, bin) pair — must keep the cache warm
// for untouched pairs while staying bit-identical to batch on the union
// (which now contains the duplicates too).
TEST(Incremental, CountOnlyAppendsReuseUntouchedPairs) {
  const SlimConfig config = MakeConfig(CandidateKind::kBruteForce, 2);
  const LinkedPairSample s = CabSample();

  IncrementalLinker linker(config);
  linker.Ingest(LinkageSide::kE, s.a.records());
  linker.Ingest(LinkageSide::kI, s.b.records());
  ASSERT_TRUE(linker.LinkEpoch().ok());

  // Duplicate the first entity's records: same windows, same cells.
  const EntityId touched = s.a.entity_ids().front();
  const auto dup = s.a.RecordsOf(touched);
  const std::vector<Record> delta(dup.begin(), dup.end());
  linker.Ingest(LinkageSide::kE, delta);
  auto epoch = linker.LinkEpoch();
  ASSERT_TRUE(epoch.ok());

  EXPECT_FALSE(epoch->incremental.rescored_all);
  EXPECT_GT(epoch->incremental.pairs_reused, 0u);

  std::vector<Record> union_a = s.a.records();
  union_a.insert(union_a.end(), delta.begin(), delta.end());
  const LinkageResult batch = BatchLink(config, union_a, s.b.records());
  ExpectBitIdentical(epoch->linkage, batch, "count-only append");
}

// Appending records that visit never-seen (window, cell) bins must grow
// the vocabulary, invalidate the cache (IDF/avg|H| shift), and still land
// exactly on the batch result.
TEST(Incremental, NewBinsGrowVocabularyAndInvalidate) {
  const SlimConfig config = MakeConfig(CandidateKind::kBruteForce, 2);
  const LinkedPairSample s = CabSample();
  const auto parts_b = SplitByTime(s.b.records(), 2);

  IncrementalLinker linker(config);
  linker.Ingest(LinkageSide::kE, s.a.records());
  linker.Ingest(LinkageSide::kI, parts_b[0]);
  ASSERT_TRUE(linker.LinkEpoch().ok());
  const size_t bins_before = linker.context().vocab.size();

  // The second time slice visits new windows — every bin there is new.
  linker.Ingest(LinkageSide::kI, parts_b[1]);
  auto epoch = linker.LinkEpoch();
  ASSERT_TRUE(epoch.ok());
  EXPECT_GT(linker.context().vocab.size(), bins_before);
  EXPECT_TRUE(epoch->incremental.rescored_all);
  EXPECT_EQ(epoch->incremental.pairs_reused, 0u);

  const LinkageResult batch =
      BatchLink(config, s.a.records(), s.b.records());
  ExpectBitIdentical(epoch->linkage, batch, "new-bin epoch");
}

// A brand-new entity shifts |U| and therefore every IDF value: the engine
// must re-score everything (no stale-IDF reuse) and agree with batch.
TEST(Incremental, NewEntityShiftsIdfAndRescoresAll) {
  const SlimConfig config = MakeConfig(CandidateKind::kBruteForce, 2);
  const LinkedPairSample s = CabSample();
  const EntityId held_out = s.b.entity_ids().back();
  std::vector<Record> b_initial, b_heldout;
  for (const Record& r : s.b.records()) {
    (r.entity == held_out ? b_heldout : b_initial).push_back(r);
  }
  ASSERT_FALSE(b_heldout.empty());

  IncrementalLinker linker(config);
  linker.Ingest(LinkageSide::kE, s.a.records());
  linker.Ingest(LinkageSide::kI, b_initial);
  ASSERT_TRUE(linker.LinkEpoch().ok());
  // Snapshot the IDF of every bin by its stable (window, cell) key —
  // BinIds renumber when the vocabulary compacts new bins in.
  const LinkageContext& ctx = linker.context();
  std::vector<std::pair<std::pair<int64_t, CellId>, double>> idf_before;
  for (BinId b = 0; b < static_cast<BinId>(ctx.vocab.size()); ++b) {
    idf_before.push_back(
        {{ctx.vocab.window(b), ctx.vocab.cell(b)}, ctx.store_i.idf(b)});
  }

  linker.Ingest(LinkageSide::kI, b_heldout);
  auto epoch = linker.LinkEpoch();
  ASSERT_TRUE(epoch.ok());
  EXPECT_TRUE(epoch->incremental.rescored_all);
  // |U_I| grew, so log(|U|/holders) must shift for every bin the new
  // entity does not hold — at least one such bin always exists.
  size_t shifted = 0;
  for (const auto& [key, idf] : idf_before) {
    const auto id = ctx.vocab.Find(key.first, key.second);
    ASSERT_TRUE(id.has_value());
    if (ctx.store_i.idf(*id) != idf) ++shifted;
  }
  EXPECT_GT(shifted, 0u);

  const LinkageResult batch =
      BatchLink(config, s.a.records(), s.b.records());
  ExpectBitIdentical(epoch->linkage, batch, "new-entity epoch");
}

// Entity ids are the stable key across epochs: TopK(u) keeps answering
// for an entity ingested in epoch 1 even after later epochs reshuffle
// every internal index.
TEST(Incremental, EntityIdsStayStableAcrossEpochs) {
  const SlimConfig config = MakeConfig(CandidateKind::kBruteForce, 2);
  const LinkedPairSample s = CabSample();
  const auto parts_b = SplitByTime(s.b.records(), 2);

  IncrementalLinker linker(config);
  linker.Ingest(LinkageSide::kE, s.a.records());
  linker.Ingest(LinkageSide::kI, parts_b[0]);
  ASSERT_TRUE(linker.LinkEpoch().ok());
  ASSERT_FALSE(linker.links().empty());
  const EntityId u = linker.links().front().u;
  const auto top_before = linker.TopK(u, 3);
  ASSERT_FALSE(top_before.empty());
  EXPECT_EQ(top_before.front().u, u);

  linker.Ingest(LinkageSide::kI, parts_b[1]);
  ASSERT_TRUE(linker.LinkEpoch().ok());
  const auto top_after = linker.TopK(u, 3);
  ASSERT_FALSE(top_after.empty());
  EXPECT_EQ(top_after.front().u, u);
  // Ranking is (score desc, v asc) over this epoch's scored pairs.
  for (size_t i = 1; i < top_after.size(); ++i) {
    EXPECT_GE(top_after[i - 1].score, top_after[i].score);
  }
  // And the ranking agrees with the batch graph over the union.
  const LinkageResult batch =
      BatchLink(config, s.a.records(), s.b.records());
  double best = 0.0;
  for (const WeightedEdge& e : batch.graph.edges()) {
    if (e.u == u) best = std::max(best, e.weight);
  }
  EXPECT_EQ(top_after.front().score, best);
}

// The epoch delta feed (SUBSCRIBE) is exact: removed ∪ kept = previous,
// kept ∪ added = current, compared on full (u, v, score) triples.
TEST(Incremental, EpochDeltasReconcile) {
  const SlimConfig config = MakeConfig(CandidateKind::kLsh, 2);
  const LinkedPairSample s = CabSample();
  const auto parts_a = SplitByTime(s.a.records(), 2);
  const auto parts_b = SplitByTime(s.b.records(), 2);

  IncrementalLinker linker(config);
  linker.Ingest(LinkageSide::kE, parts_a[0]);
  linker.Ingest(LinkageSide::kI, parts_b[0]);
  auto first = linker.LinkEpoch();
  ASSERT_TRUE(first.ok());
  const std::vector<LinkedEntityPair> before = first->linkage.links;

  linker.Ingest(LinkageSide::kE, parts_a[1]);
  linker.Ingest(LinkageSide::kI, parts_b[1]);
  auto second = linker.LinkEpoch();
  ASSERT_TRUE(second.ok());

  std::vector<LinkedEntityPair> reconstructed;
  for (const LinkedEntityPair& link : before) {
    const bool removed =
        std::find(second->removed_links.begin(), second->removed_links.end(),
                  link) != second->removed_links.end();
    if (!removed) reconstructed.push_back(link);
  }
  reconstructed.insert(reconstructed.end(), second->added_links.begin(),
                       second->added_links.end());
  std::sort(reconstructed.begin(), reconstructed.end(),
            [](const LinkedEntityPair& a, const LinkedEntityPair& b) {
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  EXPECT_EQ(reconstructed, second->linkage.links);
}

}  // namespace
}  // namespace slim
