#include "lsh/signature.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/lambert_w.h"

namespace slim {
namespace {

CellId Cell(int level, uint64_t i, uint64_t j) {
  return CellId::FromIndices(level, i, j);
}

WindowSegmentTree TreeOf(std::vector<WindowedCellCount> entries) {
  return WindowSegmentTree::Build(std::move(entries));
}

TEST(Signature, PaperIllustrativeExample) {
  // Fig. 3: 12 leaf windows, queries of 3 windows -> signature length 4.
  // "Circle" dominates query 1 for entity u (3 visits vs 2).
  const CellId circle = Cell(12, 100, 100);
  const CellId square = Cell(12, 200, 200);
  const WindowSegmentTree tree = TreeOf({
      {0, circle, 1}, {0, square, 1}, {1, circle, 1}, {1, square, 1},
      {2, circle, 1},                                      // query 1: c=3,s=2
      {3, square, 1}, {4, square, 1}, {5, circle, 1},      // query 2: s=2,c=1
      // query 3 (windows 6-8): empty -> placeholder
      {9, circle, 1}, {10, circle, 1}, {11, circle, 1},    // query 4: c=3
  });
  const LshSignature sig = BuildSignature(tree, 0, 12, 3, 12);
  ASSERT_EQ(sig.size(), 4u);
  EXPECT_EQ(sig.cells[0], circle.raw());
  EXPECT_EQ(sig.cells[1], square.raw());
  EXPECT_TRUE(sig.IsPlaceholder(2));
  EXPECT_EQ(sig.cells[3], circle.raw());
}

TEST(Signature, EmptyTreeIsAllPlaceholders) {
  const WindowSegmentTree tree = WindowSegmentTree::Build({});
  const LshSignature sig = BuildSignature(tree, 0, 10, 2, 12);
  ASSERT_EQ(sig.size(), 5u);
  for (size_t k = 0; k < sig.size(); ++k) EXPECT_TRUE(sig.IsPlaceholder(k));
}

TEST(Signature, CoarserSpatialLevelAggregates) {
  const CellId parent = Cell(11, 50, 50);
  const WindowSegmentTree tree = TreeOf({
      {0, parent.Child(0), 1},
      {0, parent.Child(1), 1},
      {0, Cell(12, 900, 900), 1},
  });
  // At leaf level the lone far cell ties at 1-1-1 (smallest id wins); at
  // level 11 the two siblings merge to 2 and the parent dominates.
  const LshSignature coarse = BuildSignature(tree, 0, 1, 1, 11);
  EXPECT_EQ(coarse.cells[0], parent.raw());
}

TEST(Signature, SimilarityCountsMatchingPositions) {
  LshSignature a{{1, 2, 3, 4}};
  LshSignature b{{1, 9, 3, 8}};
  EXPECT_DOUBLE_EQ(SignatureSimilarity(a, b), 0.5);
  EXPECT_DOUBLE_EQ(SignatureSimilarity(a, a), 1.0);
}

TEST(Signature, PlaceholdersNeverMatch) {
  LshSignature a{{kSignaturePlaceholder, 2}};
  LshSignature b{{kSignaturePlaceholder, 2}};
  // Only position 1 counts; the shared placeholder is not evidence.
  EXPECT_DOUBLE_EQ(SignatureSimilarity(a, b), 0.5);
}

TEST(Signature, SimilarityDiesOnSizeMismatch) {
  LshSignature a{{1, 2}};
  LshSignature b{{1}};
  EXPECT_DEATH(SignatureSimilarity(a, b), "mismatch");
}

TEST(Banding, NumBandsMatchesLambertSizing) {
  // b = e^{W(-s ln t)} rounded into [1, s].
  for (const auto& [s, t] : std::vector<std::pair<size_t, double>>{
           {4, 0.6}, {16, 0.6}, {64, 0.5}, {100, 0.8}, {8, 0.2}}) {
    const int b = ComputeNumBands(s, t);
    EXPECT_GE(b, 1);
    EXPECT_LE(b, static_cast<int>(s));
    const double exact = std::exp(
        LambertW0(-static_cast<double>(s) * std::log(t)));
    EXPECT_NEAR(b, exact, 0.51) << "s=" << s << " t=" << t;
  }
}

TEST(Banding, MoreBandsForLowerThresholds) {
  // Lower t -> hash more aggressively (more bands, shorter rows).
  EXPECT_GE(ComputeNumBands(64, 0.3), ComputeNumBands(64, 0.8));
}

TEST(Banding, CollisionProbabilityIsAnSCurve) {
  const int r = 4, b = 16;
  double prev = -1.0;
  for (double t = 0.0; t <= 1.0; t += 0.05) {
    const double p = BandCollisionProbability(t, r, b);
    EXPECT_GE(p, prev - 1e-12);  // monotone
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_NEAR(BandCollisionProbability(0.0, r, b), 0.0, 1e-12);
  EXPECT_NEAR(BandCollisionProbability(1.0, r, b), 1.0, 1e-12);
  // Around the approximate threshold the curve is in its steep middle.
  const double t_star = ApproximateThreshold(r, b);
  const double p_star = BandCollisionProbability(t_star, r, b);
  EXPECT_GT(p_star, 0.3);
  EXPECT_LT(p_star, 0.9);
}

TEST(Banding, ApproximateThresholdFormula) {
  EXPECT_NEAR(ApproximateThreshold(2, 4), std::pow(0.25, 0.5), 1e-12);
  EXPECT_NEAR(ApproximateThreshold(5, 20), std::pow(0.05, 0.2), 1e-12);
}

TEST(Signature, QueriesAlignAcrossHistories) {
  // Two trees over different window subsets must produce signatures whose
  // positions refer to the same query ranges.
  const CellId a = Cell(12, 1, 1);
  const CellId b = Cell(12, 2, 2);
  const WindowSegmentTree t1 = TreeOf({{0, a, 1}, {5, b, 1}});
  const WindowSegmentTree t2 = TreeOf({{1, a, 1}, {4, b, 1}});
  const LshSignature s1 = BuildSignature(t1, 0, 6, 3, 12);
  const LshSignature s2 = BuildSignature(t2, 0, 6, 3, 12);
  ASSERT_EQ(s1.size(), 2u);
  ASSERT_EQ(s2.size(), 2u);
  // Query 0 covers windows [0,3): both entities dominated by cell a.
  EXPECT_EQ(s1.cells[0], a.raw());
  EXPECT_EQ(s2.cells[0], a.raw());
  EXPECT_EQ(s1.cells[1], b.raw());
  EXPECT_EQ(s2.cells[1], b.raw());
  EXPECT_DOUBLE_EQ(SignatureSimilarity(s1, s2), 1.0);
}

TEST(Signature, StepLargerThanSpanYieldsSingleQuery) {
  const WindowSegmentTree tree = TreeOf({{0, Cell(12, 1, 1), 1}});
  const LshSignature sig = BuildSignature(tree, 0, 3, 100, 12);
  EXPECT_EQ(sig.size(), 1u);
}

}  // namespace
}  // namespace slim
