#include "eval/metrics.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace slim {
namespace {

GroundTruth MakeTruth(std::vector<std::pair<EntityId, EntityId>> pairs) {
  GroundTruth t;
  for (const auto& [a, b] : pairs) t.a_to_b[a] = b;
  return t;
}

TEST(EvaluateLinks, PerfectLinkage) {
  const GroundTruth truth = MakeTruth({{1, 10}, {2, 20}});
  const std::vector<LinkedEntityPair> links = {{1, 10, 5.0}, {2, 20, 4.0}};
  const LinkageQuality q = EvaluateLinks(links, truth);
  EXPECT_EQ(q.true_positives, 2u);
  EXPECT_EQ(q.false_positives, 0u);
  EXPECT_EQ(q.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
}

TEST(EvaluateLinks, MixedLinkage) {
  const GroundTruth truth = MakeTruth({{1, 10}, {2, 20}, {3, 30}, {4, 40}});
  const std::vector<LinkedEntityPair> links = {
      {1, 10, 1.0},   // TP
      {2, 99, 1.0},   // FP (wrong partner)
      {9, 40, 1.0},   // FP (not a truth entity)
  };
  const LinkageQuality q = EvaluateLinks(links, truth);
  EXPECT_EQ(q.true_positives, 1u);
  EXPECT_EQ(q.false_positives, 2u);
  EXPECT_EQ(q.false_negatives, 3u);
  EXPECT_NEAR(q.precision, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.recall, 0.25, 1e-12);
}

TEST(EvaluateLinks, EmptyLinksZeroScores) {
  const GroundTruth truth = MakeTruth({{1, 10}});
  const LinkageQuality q = EvaluateLinks({}, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.f1, 0.0);
  EXPECT_EQ(q.false_negatives, 1u);
}

TEST(EvaluateLinks, EmptyTruthMakesAllLinksFalse) {
  const LinkageQuality q = EvaluateLinks({{1, 10, 1.0}}, GroundTruth{});
  EXPECT_EQ(q.false_positives, 1u);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
}

TEST(HitPrecision, PerfectRankGivesOne) {
  BipartiteGraph g;
  g.AddEdge(1, 10, 9.0);  // true partner ranked first
  g.AddEdge(1, 11, 2.0);
  const GroundTruth truth = MakeTruth({{1, 10}});
  EXPECT_DOUBLE_EQ(HitPrecisionAtK(g, {1}, truth, 40), 1.0);
}

TEST(HitPrecision, RankDecaysLinearly) {
  BipartiteGraph g;
  // True partner at rank 3 (two heavier edges above it).
  g.AddEdge(1, 11, 9.0);
  g.AddEdge(1, 12, 8.0);
  g.AddEdge(1, 10, 7.0);
  const GroundTruth truth = MakeTruth({{1, 10}});
  // 1 - (rank0 = 2)/k with k = 4 -> 0.5.
  EXPECT_DOUBLE_EQ(HitPrecisionAtK(g, {1}, truth, 4), 0.5);
}

TEST(HitPrecision, BeyondKContributesZero) {
  BipartiteGraph g;
  g.AddEdge(1, 11, 9.0);
  g.AddEdge(1, 12, 8.0);
  g.AddEdge(1, 10, 7.0);
  const GroundTruth truth = MakeTruth({{1, 10}});
  EXPECT_DOUBLE_EQ(HitPrecisionAtK(g, {1}, truth, 2), 0.0);
}

TEST(HitPrecision, EntitiesWithoutTruthDragTheAverage) {
  BipartiteGraph g;
  g.AddEdge(1, 10, 9.0);
  g.AddEdge(2, 10, 9.0);  // entity 2 has no true partner
  const GroundTruth truth = MakeTruth({{1, 10}});
  // Entity 1 scores 1.0, entity 2 scores 0 -> mean 0.5 (the paper's "best
  // achievable 0.5" setup at 50% intersection).
  EXPECT_DOUBLE_EQ(HitPrecisionAtK(g, {1, 2}, truth, 40), 0.5);
}

TEST(HitPrecision, UnscoredTruePartnerScoresZero) {
  BipartiteGraph g;
  g.AddEdge(1, 11, 9.0);  // true partner 10 never scored
  const GroundTruth truth = MakeTruth({{1, 10}});
  EXPECT_DOUBLE_EQ(HitPrecisionAtK(g, {1}, truth, 40), 0.0);
}

TEST(HitPrecision, TieBreaksTowardSmallerId) {
  BipartiteGraph g;
  g.AddEdge(1, 10, 5.0);
  g.AddEdge(1, 11, 5.0);  // tie; 10 ranks first
  const GroundTruth truth = MakeTruth({{1, 10}});
  EXPECT_DOUBLE_EQ(HitPrecisionAtK(g, {1}, truth, 2), 1.0);
}

TEST(HitPrecision, EmptyEntityListIsZero) {
  EXPECT_DOUBLE_EQ(HitPrecisionAtK(BipartiteGraph{}, {}, GroundTruth{}, 10),
                   0.0);
}

// ---- Metamorphic properties of EvaluateLinks. ----
//
// The robustness sweep trusts these invariances; pin them on a mixed link
// set (true positives, wrong-partner and off-truth false positives, missed
// truth pairs).

const GroundTruth& MixedTruth() {
  static const GroundTruth truth =
      MakeTruth({{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}});
  return truth;
}

std::vector<LinkedEntityPair> MixedLinks() {
  return {
      {1, 10, 5.0},  // TP
      {2, 20, 4.0},  // TP
      {3, 30, 3.0},  // TP
      {4, 99, 2.0},  // FP: wrong partner
      {9, 50, 1.0},  // FP: not a truth entity
  };
}

void ExpectSameQuality(const LinkageQuality& a, const LinkageQuality& b) {
  EXPECT_EQ(a.true_positives, b.true_positives);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.false_negatives, b.false_negatives);
  EXPECT_DOUBLE_EQ(a.precision, b.precision);
  EXPECT_DOUBLE_EQ(a.recall, b.recall);
  EXPECT_DOUBLE_EQ(a.f1, b.f1);
}

TEST(EvaluateLinksMetamorphic, InvariantUnderLinkListPermutation) {
  const LinkageQuality reference = EvaluateLinks(MixedLinks(), MixedTruth());
  std::vector<LinkedEntityPair> links = MixedLinks();
  std::reverse(links.begin(), links.end());
  ExpectSameQuality(reference, EvaluateLinks(links, MixedTruth()));
  std::mt19937 rng(12345);
  for (int round = 0; round < 10; ++round) {
    std::shuffle(links.begin(), links.end(), rng);
    ExpectSameQuality(reference, EvaluateLinks(links, MixedTruth()));
  }
}

TEST(EvaluateLinksMetamorphic, RemovingATrueLinkNeverImprovesF1) {
  const std::vector<LinkedEntityPair> links = MixedLinks();
  const LinkageQuality reference = EvaluateLinks(links, MixedTruth());
  for (size_t drop = 0; drop < links.size(); ++drop) {
    if (!MixedTruth().AreLinked(links[drop].u, links[drop].v)) continue;
    std::vector<LinkedEntityPair> fewer = links;
    fewer.erase(fewer.begin() + static_cast<std::ptrdiff_t>(drop));
    const LinkageQuality q = EvaluateLinks(fewer, MixedTruth());
    EXPECT_LT(q.f1, reference.f1) << "dropped true link " << drop;
    EXPECT_LT(q.recall, reference.recall);
  }
}

TEST(EvaluateLinksMetamorphic, RemovingAFalseLinkNeverHurtsF1) {
  const std::vector<LinkedEntityPair> links = MixedLinks();
  const LinkageQuality reference = EvaluateLinks(links, MixedTruth());
  for (size_t drop = 0; drop < links.size(); ++drop) {
    if (MixedTruth().AreLinked(links[drop].u, links[drop].v)) continue;
    std::vector<LinkedEntityPair> fewer = links;
    fewer.erase(fewer.begin() + static_cast<std::ptrdiff_t>(drop));
    const LinkageQuality q = EvaluateLinks(fewer, MixedTruth());
    EXPECT_GE(q.f1, reference.f1) << "dropped false link " << drop;
    EXPECT_DOUBLE_EQ(q.recall, reference.recall);
  }
}

TEST(EvaluateLinksMetamorphic, SymmetricUnderSideSwap) {
  // Swapping the roles of the two datasets — every link (u, v) -> (v, u)
  // and the truth map inverted — must leave all counts and rates intact.
  std::vector<LinkedEntityPair> swapped = MixedLinks();
  for (LinkedEntityPair& link : swapped) std::swap(link.u, link.v);
  GroundTruth inverted;
  for (const auto& [a, b] : MixedTruth().a_to_b) inverted.a_to_b[b] = a;
  ExpectSameQuality(EvaluateLinks(MixedLinks(), MixedTruth()),
                    EvaluateLinks(swapped, inverted));
}

}  // namespace
}  // namespace slim
