#include "baselines/st_link.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace slim {
namespace {

constexpr int64_t kWindow = 900;

const LatLng kSpotA{37.700, -122.450};
const LatLng kSpotB{37.745, -122.430};
const LatLng kSpotC{37.780, -122.410};
const LatLng kFar{38.600, -122.450};  // ~100 km: alibi

// Builds a dataset where each entity emits one record per (window, place).
LocationDataset Make(
    const char* name,
    const std::vector<std::pair<EntityId,
                                std::vector<std::pair<int, LatLng>>>>& spec) {
  LocationDataset ds(name);
  for (const auto& [entity, recs] : spec) {
    for (const auto& [w, loc] : recs) {
      ds.Add(entity, loc, static_cast<int64_t>(w) * kWindow + 450);
    }
  }
  ds.Finalize();
  return ds;
}

StLinkConfig Config() {
  StLinkConfig c;
  c.window_seconds = kWindow;
  c.min_cooccurrences = 3;  // fixed k/l: deterministic tests
  c.min_diversity = 2;
  return c;
}

TEST(StLink, LinksEntitiesWithDiverseCoOccurrences) {
  // u0/v0 co-occur in 4 windows over 3 distinct places.
  const auto e = Make("E", {{0, {{0, kSpotA}, {1, kSpotB}, {2, kSpotC},
                                 {3, kSpotA}}}});
  const auto i = Make("I", {{0, {{0, kSpotA}, {1, kSpotB}, {2, kSpotC},
                                 {3, kSpotA}}}});
  const StLinkLinker linker(Config());
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->links.size(), 1u);
  EXPECT_EQ(r->links[0].u, 0);
  EXPECT_EQ(r->links[0].v, 0);
  EXPECT_EQ(r->k_used, 3u);
  EXPECT_EQ(r->l_used, 2u);
}

TEST(StLink, InsufficientCoOccurrencesNotLinked) {
  const auto e = Make("E", {{0, {{0, kSpotA}, {1, kSpotB}}}});
  const auto i = Make("I", {{0, {{0, kSpotA}, {1, kSpotB}}}});
  const StLinkLinker linker(Config());  // needs k >= 3
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->links.empty());
}

TEST(StLink, LowDiversityNotLinked) {
  // Many co-occurrences but all at one place: l = 1 < 2.
  const auto e = Make("E", {{0, {{0, kSpotA}, {1, kSpotA}, {2, kSpotA},
                                 {3, kSpotA}, {4, kSpotA}}}});
  const auto i = Make("I", {{0, {{0, kSpotA}, {1, kSpotA}, {2, kSpotA},
                                 {3, kSpotA}, {4, kSpotA}}}});
  const StLinkLinker linker(Config());
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->links.empty());
}

TEST(StLink, AlibisDisqualifyThePair) {
  // Good co-occurrences in windows 0-3, but 4 alibi windows on top —
  // beyond the tolerance of 3.
  const auto e = Make(
      "E", {{0, {{0, kSpotA}, {1, kSpotB}, {2, kSpotC}, {3, kSpotA},
                 {4, kSpotA}, {5, kSpotA}, {6, kSpotA}, {7, kSpotA}}}});
  const auto i = Make(
      "I", {{0, {{0, kSpotA}, {1, kSpotB}, {2, kSpotC}, {3, kSpotA},
                 {4, kFar}, {5, kFar}, {6, kFar}, {7, kFar}}}});
  const StLinkLinker linker(Config());
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->links.empty());
}

TEST(StLink, AmbiguousEntitiesAreDropped) {
  // Two right-side entities both qualify against u0: ST-Link refuses to
  // choose and drops all of them.
  const std::vector<std::pair<int, LatLng>> trail = {
      {0, kSpotA}, {1, kSpotB}, {2, kSpotC}, {3, kSpotA}};
  const auto e = Make("E", {{0, trail}});
  const auto i = Make("I", {{0, trail}, {1, trail}});
  const StLinkLinker linker(Config());
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->links.empty());
  EXPECT_GT(r->ambiguous_entities, 0u);
}

TEST(StLink, GraphCarriesCoOccurrenceCounts) {
  const auto e = Make("E", {{0, {{0, kSpotA}, {1, kSpotB}}}});
  const auto i = Make("I", {{0, {{0, kSpotA}, {1, kSpotB}}}});
  const StLinkLinker linker(Config());
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->graph.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(r->graph.edges()[0].weight, 2.0);
  EXPECT_GT(r->record_comparisons, 0u);
}

TEST(StLink, AutoDetectsKAndL) {
  // With auto thresholds (0), values fall back to sane defaults or elbow
  // detections — either way the obvious pair must link and a noise pair
  // with a single co-occurrence must not.
  const auto e = Make(
      "E", {{0, {{0, kSpotA}, {1, kSpotB}, {2, kSpotC}, {3, kSpotA},
                 {4, kSpotB}, {5, kSpotC}}},
            {1, {{0, kSpotB}}}});
  const auto i = Make(
      "I", {{0, {{0, kSpotA}, {1, kSpotB}, {2, kSpotC}, {3, kSpotA},
                 {4, kSpotB}, {5, kSpotC}}},
            {1, {{6, kSpotC}}}});
  StLinkConfig cfg;
  cfg.window_seconds = kWindow;  // auto k, auto l
  const StLinkLinker linker(cfg);
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->links.size(), 1u);
  EXPECT_EQ(r->links[0].u, 0);
  EXPECT_EQ(r->links[0].v, 0);
  EXPECT_GE(r->k_used, 1u);
  EXPECT_GE(r->l_used, 1u);
}

// Regression (PR 8): the candidate graph used to be emitted while
// iterating the merged per-shard unordered_map, so edge order (and
// anything downstream that breaks weight ties positionally, e.g.
// Hit-Precision@k) depended on the stdlib hash layout. Shard results are
// now drained and key-sorted before any consumer runs.
TEST(StLink, CandidateGraphEdgesAreKeySorted) {
  // Three entities per side; each u co-occurs with two v's so the graph
  // has several edges per vertex and ambiguity drops every final link.
  std::vector<std::pair<EntityId, std::vector<std::pair<int, LatLng>>>> spec;
  for (EntityId u = 0; u < 3; ++u) {
    spec.push_back({u, {{0, kSpotA}, {1, kSpotB}, {2, kSpotC},
                        {3, kSpotA}, {4, kSpotB}}});
  }
  const auto e = Make("E", spec);
  const auto i = Make("I", spec);
  const StLinkLinker linker(Config());
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& edges = r->graph.edges();
  ASSERT_GE(edges.size(), 2u);
  for (size_t k = 1; k < edges.size(); ++k) {
    const bool sorted =
        edges[k - 1].u < edges[k].u ||
        (edges[k - 1].u == edges[k].u && edges[k - 1].v < edges[k].v);
    EXPECT_TRUE(sorted) << "edge " << k << " out of (u, v) order";
  }
}

TEST(StLink, EmptyDatasetsYieldNoLinks) {
  LocationDataset e("E"), i("I");
  e.Finalize();
  i.Finalize();
  const StLinkLinker linker(Config());
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->links.empty());
}

}  // namespace
}  // namespace slim
