// Tests of the pluggable candidate-generation stage (core/candidates.h):
// the three generators' set semantics, their ordering/uniqueness contract,
// thread-count invariance of construction, and the kind parsing used by
// the --candidates flag.
#include "core/candidates.h"

#include <algorithm>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/slim.h"
#include "data/cab_generator.h"
#include "test_util.h"

namespace slim {
namespace {

constexpr int64_t kWindow = 900;

HistoryConfig HConfig(int level = 12) {
  HistoryConfig c;
  c.spatial_level = level;
  c.window_seconds = kWindow;
  return c;
}

// Two half-sampled sides of one cab workload — the linkage setting.
struct SampledPair {
  LocationDataset a{"a"};
  LocationDataset b{"b"};
};

SampledPair MakeSampledPair(uint64_t seed, int taxis = 20) {
  CabGeneratorOptions gopt;
  gopt.num_taxis = taxis;
  gopt.duration_days = 1.0;
  gopt.record_interval_seconds = 600.0;
  const LocationDataset master = GenerateCabDataset(gopt);
  Rng rng(seed);
  SampledPair pair;
  for (const Record& r : master.records()) {
    if (rng.NextBernoulli(0.5)) pair.a.Add(r);
    if (rng.NextBernoulli(0.5)) pair.b.Add(r);
  }
  pair.a.Finalize();
  pair.b.Finalize();
  return pair;
}

std::vector<EntityIdx> ToVector(std::span<const EntityIdx> span) {
  return {span.begin(), span.end()};
}

TEST(CandidateKindTest, NamesRoundTripThroughParsing) {
  for (CandidateKind kind :
       {CandidateKind::kLsh, CandidateKind::kBruteForce,
        CandidateKind::kGrid}) {
    auto parsed = ParseCandidateKind(CandidateKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseCandidateKind("unheard-of").ok());
  EXPECT_FALSE(ParseCandidateKind("").ok());
}

TEST(BruteForceCandidatesTest, CoversTheFullCrossProduct) {
  const SampledPair pair = MakeSampledPair(3);
  const LinkageContext ctx =
      LinkageContext::Build(pair.a, pair.b, HConfig());
  const auto gen = MakeCandidateGenerator(
      CandidateKind::kBruteForce, ctx, LshConfig{}, GridBlockingConfig{});
  EXPECT_EQ(gen->name(), "brute");
  EXPECT_EQ(gen->total_candidate_pairs(),
            static_cast<uint64_t>(ctx.store_e.size()) * ctx.store_i.size());
  for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
    const auto cands = gen->CandidatesFor(u);
    ASSERT_EQ(cands.size(), ctx.store_i.size());
    for (size_t k = 0; k < cands.size(); ++k) {
      EXPECT_EQ(cands[k], static_cast<EntityIdx>(k));
    }
  }
}

TEST(LshCandidatesTest, MatchesTheUnderlyingLshIndex) {
  const SampledPair pair = MakeSampledPair(4);
  const LinkageContext ctx =
      LinkageContext::Build(pair.a, pair.b, HConfig());
  LshConfig lc;
  lc.signature_spatial_level = 10;
  lc.temporal_step_windows = 8;
  lc.similarity_threshold = 0.4;
  const auto gen = MakeCandidateGenerator(CandidateKind::kLsh, ctx, lc,
                                          GridBlockingConfig{});
  EXPECT_EQ(gen->name(), "lsh");

  // An independently built index must agree pair-for-pair after re-keying
  // entity ids to dense indices.
  std::vector<LshIndex::Entry> left, right;
  for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
    left.push_back({ctx.store_e.entity_id(u), &ctx.store_e.tree(u)});
  }
  for (EntityIdx v = 0; v < ctx.store_i.size(); ++v) {
    right.push_back({ctx.store_i.entity_id(v), &ctx.store_i.tree(v)});
  }
  const LshIndex index = LshIndex::Build(left, right, lc);
  EXPECT_EQ(gen->total_candidate_pairs(), index.total_candidate_pairs());
  for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
    const auto& expected_ids = index.CandidatesFor(ctx.store_e.entity_id(u));
    std::vector<EntityIdx> expected;
    for (const EntityId v : expected_ids) {
      expected.push_back(*ctx.store_i.IndexOf(v));
    }
    EXPECT_EQ(ToVector(gen->CandidatesFor(u)), expected) << "entity idx " << u;
  }
}

TEST(GridBlockingCandidatesTest, SharedBinImpliesCandidacy) {
  // Entities sharing a (window, leaf cell) bin must be candidates; the
  // sampled sides share the master's records, so every surviving entity
  // co-visits bins with its own counterpart.
  const SampledPair pair = MakeSampledPair(5);
  const LinkageContext ctx =
      LinkageContext::Build(pair.a, pair.b, HConfig());
  const auto gen = MakeCandidateGenerator(CandidateKind::kGrid, ctx,
                                          LshConfig{}, GridBlockingConfig{});
  EXPECT_EQ(gen->name(), "grid");

  uint64_t listed = 0;
  for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
    const auto cands = gen->CandidatesFor(u);
    listed += cands.size();
    // Contract: ascending and de-duplicated.
    EXPECT_TRUE(std::is_sorted(cands.begin(), cands.end()));
    EXPECT_EQ(std::adjacent_find(cands.begin(), cands.end()), cands.end());
    // Exactness: v is a candidate iff u and v share at least one bin.
    const auto bins_u = ctx.store_e.bins(u);
    for (EntityIdx v = 0; v < ctx.store_i.size(); ++v) {
      const auto bins_v = ctx.store_i.bins(v);
      std::vector<BinId> shared;
      std::set_intersection(bins_u.begin(), bins_u.end(), bins_v.begin(),
                            bins_v.end(), std::back_inserter(shared));
      const bool is_candidate =
          std::binary_search(cands.begin(), cands.end(), v);
      EXPECT_EQ(is_candidate, !shared.empty())
          << "pair " << u << "," << v;
    }
  }
  EXPECT_EQ(gen->total_candidate_pairs(), listed);
  EXPECT_GT(listed, 0u);
  // And it must actually block: fewer pairs than the cross product.
  EXPECT_LT(listed,
            static_cast<uint64_t>(ctx.store_e.size()) * ctx.store_i.size());
}

TEST(GridBlockingCandidatesTest, DisjointPlacesProduceNoCandidates) {
  Rng rng(6);
  std::vector<LatLng> sf, la;
  for (int k = 0; k < 5; ++k) {
    const LatLng p = testing::RandomPointInBox(&rng);
    sf.push_back(p);
    la.push_back({p.lat_deg - 3.0, p.lng_deg + 4.0});
  }
  const LocationDataset ds_e = testing::MakeAnchoredDataset(sf, 24, kWindow);
  const LocationDataset ds_i = testing::MakeAnchoredDataset(la, 24, kWindow);
  const LinkageContext ctx = LinkageContext::Build(ds_e, ds_i, HConfig());
  const auto gen = MakeCandidateGenerator(CandidateKind::kGrid, ctx,
                                          LshConfig{}, GridBlockingConfig{});
  EXPECT_EQ(gen->total_candidate_pairs(), 0u);
}

TEST(GridBlockingCandidatesTest, HotspotCapDropsCrowdedBins) {
  // All entities share one "home" bin; each also has a private bin shared
  // with nobody. With the cap below the crowd size, the home bin stops
  // blocking and only exact co-visitors remain.
  Rng rng(7);
  std::vector<LatLng> anchors;
  for (int k = 0; k < 8; ++k) {
    anchors.push_back(testing::RandomPointInBox(&rng));
  }
  const LocationDataset ds =
      testing::MakeAnchoredDataset(anchors, 6, kWindow);
  LocationDataset crowded("crowded");
  const LatLng home{37.7, -122.4};
  for (const Record& r : ds.records()) crowded.Add(r);
  for (EntityId e = 0; e < 8; ++e) crowded.Add(e, home, 100 * kWindow + 10);
  crowded.Finalize();

  const LinkageContext ctx =
      LinkageContext::Build(crowded, crowded, HConfig());
  const auto uncapped = MakeCandidateGenerator(
      CandidateKind::kGrid, ctx, LshConfig{}, GridBlockingConfig{});
  GridBlockingConfig cap;
  cap.max_bin_entities = 4;  // the home bin holds 8 entities
  const auto capped =
      MakeCandidateGenerator(CandidateKind::kGrid, ctx, LshConfig{}, cap);
  // Uncapped: the home bin makes everyone everyone's candidate.
  EXPECT_EQ(uncapped->total_candidate_pairs(), 64u);
  // Capped: the home bin is a stop word; only genuine co-visits remain
  // (at least each entity with itself).
  EXPECT_LT(capped->total_candidate_pairs(),
            uncapped->total_candidate_pairs());
  for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
    const auto cands = capped->CandidatesFor(u);
    EXPECT_TRUE(std::binary_search(cands.begin(), cands.end(), u));
  }
}

TEST(CandidateGeneratorTest, ConstructionIsThreadCountInvariant) {
  const SampledPair pair = MakeSampledPair(8, 30);
  const LinkageContext ctx =
      LinkageContext::Build(pair.a, pair.b, HConfig());
  LshConfig lc;
  lc.signature_spatial_level = 10;
  lc.temporal_step_windows = 8;
  lc.similarity_threshold = 0.4;
  for (CandidateKind kind :
       {CandidateKind::kLsh, CandidateKind::kBruteForce,
        CandidateKind::kGrid}) {
    const auto reference =
        MakeCandidateGenerator(kind, ctx, lc, GridBlockingConfig{}, 1);
    for (int threads : {2, 8}) {
      const auto gen =
          MakeCandidateGenerator(kind, ctx, lc, GridBlockingConfig{}, threads);
      ASSERT_EQ(gen->total_candidate_pairs(),
                reference->total_candidate_pairs())
          << CandidateKindName(kind) << " at " << threads;
      for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
        ASSERT_EQ(ToVector(gen->CandidatesFor(u)),
                  ToVector(reference->CandidatesFor(u)))
            << CandidateKindName(kind) << " threads " << threads << " u " << u;
      }
    }
  }
}

TEST(CandidateGeneratorTest, GridFeedsTheFullPipeline) {
  // End to end: the grid generator must carry a linkage to completion and
  // self-link a symmetric problem perfectly.
  const SampledPair pair = MakeSampledPair(9, 24);
  SlimConfig config;
  config.candidates = CandidateKind::kGrid;
  config.threads = 2;
  auto result = SlimLinker(config).Link(pair.a, pair.b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->candidates_used, CandidateKind::kGrid);
  EXPECT_LE(result->candidate_pairs, result->possible_pairs);
  EXPECT_GT(result->links.size(), 0u);
  size_t self_links = 0;
  for (const auto& link : result->links) self_links += link.u == link.v;
  // Sampled halves share ids: most links should be the true self pairs.
  EXPECT_GT(self_links, result->links.size() / 2);
}

}  // namespace
}  // namespace slim
