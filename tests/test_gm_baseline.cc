#include "baselines/gm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/sampler.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace slim {
namespace {

// Entities with distinct spatial footprints: entity k lives in a tight blob
// around its own anchor.
LocationDataset BlobDataset(const char* name,
                            const std::vector<LatLng>& anchors,
                            int records_each, uint64_t seed) {
  LocationDataset ds(name);
  Rng rng(seed);
  for (size_t e = 0; e < anchors.size(); ++e) {
    for (int k = 0; k < records_each; ++k) {
      const LatLng p = DestinationPoint(
          anchors[e], rng.NextDouble(0, 360),
          std::abs(rng.NextGaussian()) * 200.0);
      ds.Add(static_cast<EntityId>(e), p, rng.NextInt64(0, 86400 * 5));
    }
  }
  ds.Finalize();
  return ds;
}

GmConfig FastConfig() {
  GmConfig c;
  c.num_components = 2;
  return c;
}

TEST(GmBaseline, ScoresOwnFootprintHighest) {
  Rng rng(1);
  std::vector<LatLng> anchors;
  for (int k = 0; k < 6; ++k) {
    anchors.push_back(testing::RandomPointInBox(&rng));
  }
  const auto e = BlobDataset("E", anchors, 40, 10);
  const auto i = BlobDataset("I", anchors, 40, 20);
  const GmLinker linker(FastConfig());
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // For every left entity, the same-anchor right entity gets the best
  // cross-likelihood.
  std::unordered_map<EntityId, std::pair<EntityId, double>> best;
  for (const auto& edge : r->graph.edges()) {
    const auto it = best.find(edge.u);
    if (it == best.end() || edge.weight > it->second.second) {
      best[edge.u] = {edge.v, edge.weight};
    }
  }
  ASSERT_EQ(best.size(), anchors.size());
  for (const auto& [u, bv] : best) EXPECT_EQ(bv.first, u);
}

TEST(GmBaseline, ScoresAllCrossPairs) {
  Rng rng(2);
  std::vector<LatLng> anchors;
  for (int k = 0; k < 4; ++k) {
    anchors.push_back(testing::RandomPointInBox(&rng));
  }
  const auto e = BlobDataset("E", anchors, 20, 30);
  const auto i = BlobDataset("I", anchors, 20, 40);
  const GmLinker linker(FastConfig());
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->graph.num_edges(), 16u);  // no blocking: full cross product
  EXPECT_GT(r->record_comparisons, 0u);
}

TEST(GmBaseline, RecoversIdentityLinkageOnSeparatedEntities) {
  Rng rng(3);
  std::vector<LatLng> anchors;
  for (int k = 0; k < 8; ++k) {
    anchors.push_back(testing::RandomPointInBox(&rng));
  }
  const auto e = BlobDataset("E", anchors, 40, 50);
  const auto i = BlobDataset("I", anchors, 40, 60);
  const GmLinker linker(FastConfig());
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok());

  GroundTruth truth;
  for (size_t k = 0; k < anchors.size(); ++k) {
    truth.a_to_b[static_cast<EntityId>(k)] = static_cast<EntityId>(k);
  }
  const LinkageQuality q = EvaluateLinks(r->links, truth);
  EXPECT_GE(q.recall, 0.5);
  EXPECT_GE(q.precision, 0.8);
}

TEST(GmBaseline, EmptySideYieldsEmptyResult) {
  LocationDataset e("E"), i("I");
  e.Finalize();
  i.Add(0, {37.7, -122.4}, 100);
  i.Finalize();
  const GmLinker linker(FastConfig());
  auto r = linker.Link(e, i);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->links.empty());
  EXPECT_EQ(r->graph.num_edges(), 0u);
}

TEST(GmBaseline, UnfinalizedInputRejected) {
  LocationDataset e("E"), i("I");
  e.Add(0, {37.7, -122.4}, 100);
  i.Finalize();
  const GmLinker linker(FastConfig());
  EXPECT_FALSE(linker.Link(e, i).ok());
}

}  // namespace
}  // namespace slim
