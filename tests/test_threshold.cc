#include "core/threshold.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace slim {
namespace {

// Matched-edge weights shaped like Fig. 2: a low false-positive mode and a
// high true-positive mode.
std::vector<double> BimodalWeights(double fp_mean, double tp_mean, int n_fp,
                                   int n_tp, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w;
  for (int i = 0; i < n_fp; ++i) {
    w.push_back(fp_mean + rng.NextGaussian() * fp_mean * 0.2);
  }
  for (int i = 0; i < n_tp; ++i) {
    w.push_back(tp_mean + rng.NextGaussian() * tp_mean * 0.15);
  }
  return w;
}

TEST(Threshold, GmmF1SeparatesTheTwoModes) {
  const auto w = BimodalWeights(200.0, 4000.0, 120, 130, 1);
  auto d = DetectStopThreshold(w);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  // Past the FP mode's bulk (200 +/- 40) and before the TP mode's
  // (4000 +/- 600).
  EXPECT_GT(d->threshold, 280.0);
  EXPECT_LT(d->threshold, 2800.0);
  EXPECT_GT(d->expected_f1, 0.9);
  EXPECT_GT(d->expected_precision, 0.9);
  EXPECT_GT(d->expected_recall, 0.9);
  ASSERT_EQ(d->gmm.components.size(), 2u);
  EXPECT_LT(d->gmm.components[0].mean, d->gmm.components[1].mean);
}

TEST(Threshold, AllMethodsLandBetweenTheModes) {
  const auto w = BimodalWeights(100.0, 2000.0, 200, 200, 2);
  for (auto method : {ThresholdMethod::kGmmExpectedF1, ThresholdMethod::kOtsu,
                      ThresholdMethod::kTwoMeans}) {
    auto d = DetectStopThreshold(w, method);
    ASSERT_TRUE(d.ok());
    // Between the FP bulk (100 +/- 20) and the TP bulk (2000 +/- 300).
    EXPECT_GT(d->threshold, 140.0) << static_cast<int>(method);
    EXPECT_LT(d->threshold, 1700.0) << static_cast<int>(method);
  }
}

TEST(Threshold, FailsOnTooFewEdges) {
  EXPECT_FALSE(DetectStopThreshold({1.0}).ok());
  EXPECT_FALSE(DetectStopThreshold({}).ok());
}

TEST(Threshold, FailsOnIdenticalWeights) {
  EXPECT_FALSE(DetectStopThreshold({5.0, 5.0, 5.0, 5.0}).ok());
}

TEST(ExpectedQuality, RecallFallsAndPrecisionRisesWithThreshold) {
  const auto w = BimodalWeights(100.0, 2000.0, 150, 150, 3);
  auto d = DetectStopThreshold(w);
  ASSERT_TRUE(d.ok());
  double p_lo, r_lo, f_lo, p_hi, r_hi, f_hi;
  ExpectedQualityAt(d->gmm, 50.0, &p_lo, &r_lo, &f_lo);
  ExpectedQualityAt(d->gmm, 1500.0, &p_hi, &r_hi, &f_hi);
  EXPECT_GT(r_lo, r_hi);   // low threshold keeps everything
  EXPECT_GT(p_hi, p_lo);   // high threshold is pure
  EXPECT_NEAR(r_lo, 1.0, 0.05);
}

TEST(ExpectedQuality, F1AtDetectedThresholdIsMaximal) {
  const auto w = BimodalWeights(150.0, 3000.0, 100, 200, 4);
  auto d = DetectStopThreshold(w);
  ASSERT_TRUE(d.ok());
  double p, r, best_f1;
  ExpectedQualityAt(d->gmm, d->threshold, &p, &r, &best_f1);
  for (double s = 150.0; s < 3500.0; s += 100.0) {
    double pp, rr, ff;
    ExpectedQualityAt(d->gmm, s, &pp, &rr, &ff);
    EXPECT_LE(ff, best_f1 + 1e-6) << "at s=" << s;
  }
}

TEST(Threshold, SkewedMixtureStillDetected) {
  // Few true positives among many false positives (low intersection ratio).
  const auto w = BimodalWeights(100.0, 2500.0, 450, 50, 5);
  auto d = DetectStopThreshold(w);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d->threshold, 140.0);
  EXPECT_LT(d->threshold, 2100.0);
}

TEST(Threshold, OutlierSplitFailsOpen) {
  // All-true-positive weights with a couple of high outliers (the post-LSH
  // degenerate case observed in fig11): the 2-component fit isolates the
  // outliers as a 2-point "component"; the support guard must reject the
  // fit so the caller keeps every link.
  Rng rng(8);
  std::vector<double> w;
  for (int i = 0; i < 13; ++i) w.push_back(600.0 + 15.0 * rng.NextGaussian());
  w.push_back(668.0);
  w.push_back(669.0);
  auto d = DetectStopThreshold(w);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Threshold, SupportGuardDoesNotBlockGenuineBimodal) {
  // Small but genuinely bimodal: 6 + 6 points, both components supported.
  Rng rng(9);
  std::vector<double> w;
  for (int i = 0; i < 6; ++i) w.push_back(10.0 + rng.NextGaussian());
  for (int i = 0; i < 6; ++i) w.push_back(500.0 + 5.0 * rng.NextGaussian());
  auto d = DetectStopThreshold(w);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_GT(d->threshold, 15.0);
  EXPECT_LT(d->threshold, 490.0);
}

TEST(Threshold, ThresholdFiltersCorrectFraction) {
  const auto w = BimodalWeights(100.0, 2000.0, 100, 100, 6);
  auto d = DetectStopThreshold(w);
  ASSERT_TRUE(d.ok());
  size_t kept = 0;
  for (double x : w) kept += (x > d->threshold) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(kept), 100.0, 10.0);
}

}  // namespace
}  // namespace slim
