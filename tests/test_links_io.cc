#include "eval/links_io.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace slim {
namespace {

class LinksIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("slim_links_" + std::string(info->name()) + "_" +
            std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const char* name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(LinksIoTest, RoundTrip) {
  const std::vector<LinkedEntityPair> links = {
      {1, 100, 42.5}, {2, 200, 17.25}, {-3, 300, 0.0}};
  const std::string path = Path("links.csv");
  ASSERT_TRUE(WriteLinksCsv(links, path).ok());
  auto loaded = ReadLinksCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].u, 1);
  EXPECT_EQ((*loaded)[0].v, 100);
  EXPECT_DOUBLE_EQ((*loaded)[0].score, 42.5);
  EXPECT_EQ((*loaded)[2].u, -3);
}

TEST_F(LinksIoTest, EmptyLinksRoundTrip) {
  const std::string path = Path("empty.csv");
  ASSERT_TRUE(WriteLinksCsv({}, path).ok());
  auto loaded = ReadLinksCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(LinksIoTest, MalformedRowFails) {
  const std::string path = Path("bad.csv");
  {
    std::ofstream out(path);
    out << "entity_a,entity_b,score\n1,2\n";
  }
  EXPECT_FALSE(ReadLinksCsv(path).ok());
}

TEST_F(LinksIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadLinksCsv(Path("absent.csv")).ok());
}

}  // namespace
}  // namespace slim
