// Socket-level tests of the slim_serve daemon loop (serve/server.h): a
// real AF_UNIX round trip against RunServer on a background thread —
// handshake, request/reply framing, SUBSCRIBE event push, oversized-line
// recovery, and graceful shutdown via both SHUTDOWN and the stop flag.
#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "serve/protocol.h"

namespace slim {
namespace {

SlimConfig ServeTestConfig() {
  SlimConfig c;
  c.candidates = CandidateKind::kBruteForce;
  c.threads = 2;
  return c;
}

/// Blocking line-oriented client of one daemon socket.
class LineClient {
 public:
  explicit LineClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // The server thread may not have bound yet; retry briefly.
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& line) {
    std::string framed = line + "\n";
    size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      off += static_cast<size_t>(n);
    }
  }

  /// Next '\n'-terminated line; "" on EOF.
  std::string ReadLine() {
    size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return line;
  }

  std::string Roundtrip(const std::string& line) {
    Send(line);
    return ReadLine();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// RunServer on a background thread, joined and cleaned up on scope exit.
class DaemonFixture {
 public:
  DaemonFixture() {
    socket_path_ = ::testing::TempDir() + "slim_serve_test_" +
                   std::to_string(::getpid()) + "_" +
                   std::to_string(counter_++) + ".sock";
    service_ = std::make_unique<LinkageService>(ServeTestConfig());
    ServeOptions options;
    options.socket_path = socket_path_;
    options.poll_interval_ms = 20;
    thread_ = std::thread([this, options] {
      status_ = RunServer(options, service_.get(), &stop_);
    });
  }
  ~DaemonFixture() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    ::unlink(socket_path_.c_str());
  }

  const std::string& socket_path() const { return socket_path_; }
  const Status& status() const { return status_; }
  void Join() { thread_.join(); }
  bool Joinable() const { return thread_.joinable(); }

 private:
  static inline std::atomic<int> counter_{0};
  std::string socket_path_;
  std::unique_ptr<LinkageService> service_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  Status status_;
};

TEST(ServeDaemon, HandshakeAndRequestReply) {
  DaemonFixture daemon;
  LineClient client(daemon.socket_path());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.ReadLine().rfind("HELLO slim-serve-v1 ", 0), 0u);

  EXPECT_EQ(client
                .Roundtrip("INGEST A 1 37.7749 -122.4194 600 "
                           "1 37.7755 -122.4180 1500")
                .rfind("OK ingested=2 ", 0),
            0u);
  EXPECT_EQ(client.Roundtrip("STATS").rfind("OK epoch=0 ", 0), 0u);
  EXPECT_EQ(client.Roundtrip("FROBNICATE").rfind("ERR bad-command ", 0), 0u);
}

TEST(ServeDaemon, SubscriberReceivesEpochEvents) {
  DaemonFixture daemon;
  LineClient subscriber(daemon.socket_path());
  LineClient worker(daemon.socket_path());
  ASSERT_TRUE(subscriber.connected() && worker.connected());
  subscriber.ReadLine();  // HELLO
  worker.ReadLine();      // HELLO
  EXPECT_EQ(subscriber.Roundtrip("SUBSCRIBE"), "OK subscribed epoch=0");

  // Two entities per side: with one entity per side every IDF is
  // log(1/1) = 0 and no score is positive. The decoys sit degrees away.
  worker.Send(
      "INGEST A 1 37.7749 -122.4194 600 1 37.7755 -122.4180 1500 "
      "1 37.7760 -122.4170 2400 2 36.0000 -120.0000 600");
  worker.ReadLine();
  worker.Send(
      "INGEST B 9 37.7749 -122.4194 620 9 37.7755 -122.4180 1520 "
      "9 37.7760 -122.4170 2420 8 39.0000 -124.5000 600");
  worker.ReadLine();
  EXPECT_EQ(worker.Roundtrip("LINK").rfind("OK epoch=1 ", 0), 0u);

  // The subscriber sees the delta feed, additions then the seal line.
  EXPECT_EQ(subscriber.ReadLine().rfind("EVENT epoch=1 link + 1 9 ", 0), 0u);
  EXPECT_EQ(subscriber.ReadLine(), "EVENT epoch=1 sealed links=1");
  // The issuing (non-subscribed) connection got only its reply: the next
  // round trip answers immediately, no stray events in between.
  EXPECT_EQ(worker.Roundtrip("TOPK 1 1").rfind("OK matches=1 9:", 0), 0u);
}

TEST(ServeDaemon, OversizedLineAnsweredAndRecovered) {
  DaemonFixture daemon;
  LineClient client(daemon.socket_path());
  ASSERT_TRUE(client.connected());
  client.ReadLine();  // HELLO

  // > 64 KiB without a newline: one ERR too-long, then the tail of the
  // oversized request is discarded and the session keeps working.
  client.Send(std::string(kMaxProtocolLineBytes + 100, 'A'));
  EXPECT_EQ(client.ReadLine().rfind("ERR too-long ", 0), 0u);
  EXPECT_EQ(client.Roundtrip("STATS").rfind("OK epoch=0 ", 0), 0u);
}

TEST(ServeDaemon, ShutdownCommandStopsTheServer) {
  auto daemon = std::make_unique<DaemonFixture>();
  const std::string path = daemon->socket_path();
  {
    LineClient client(path);
    ASSERT_TRUE(client.connected());
    client.ReadLine();  // HELLO
    EXPECT_EQ(client.Roundtrip("SHUTDOWN"), "OK bye");
    // The server closes every connection and exits its loop.
    EXPECT_EQ(client.ReadLine(), "");
  }
  daemon->Join();
  EXPECT_TRUE(daemon->status().ok()) << daemon->status().ToString();
  // The socket file is gone: a fresh connect must fail.
  LineClient late(path);
  EXPECT_FALSE(late.connected());
  daemon.reset();
}

TEST(ServeDaemon, StopFlagShutsDownIdleServer) {
  {
    DaemonFixture daemon;
    LineClient client(daemon.socket_path());
    ASSERT_TRUE(client.connected());
    client.ReadLine();
    // Destructor raises the stop flag and joins — the poll loop must
    // notice within its interval even with a connection open.
  }
  SUCCEED();
}

}  // namespace
}  // namespace slim
