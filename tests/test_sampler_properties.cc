// Property sweep over the experiment sampler's parameter grid: for every
// (intersection ratio, inclusion probability) combination the structural
// invariants of Sec. 5.1 must hold.
#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/sampler.h"
#include "test_util.h"

namespace slim {
namespace {

const LocationDataset& Master() {
  static const LocationDataset ds = [] {
    LocationDataset master("master");
    Rng rng(500);
    for (EntityId e = 0; e < 90; ++e) {
      for (int r = 0; r < 60; ++r) {
        master.Add(e, testing::RandomPointInBox(&rng),
                   rng.NextInt64(0, 86400 * 3));
      }
    }
    master.Finalize();
    return master;
  }();
  return ds;
}

struct GridPoint {
  double rho;
  double p;
};

class SamplerGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(SamplerGrid, StructuralInvariantsHold) {
  const GridPoint g = GetParam();
  PairSampleOptions opt;
  opt.entities_per_side = 30;
  opt.intersection_ratio = g.rho;
  opt.inclusion_probability = g.p;
  opt.min_records = 0;
  opt.seed = 77;
  auto s = SampleLinkedPair(Master(), opt);
  ASSERT_TRUE(s.ok()) << s.status().ToString();

  // Side sizes and truth size as requested.
  EXPECT_EQ(s->a.num_entities(), 30u);
  EXPECT_EQ(s->b.num_entities(), 30u);
  EXPECT_EQ(s->truth.size(),
            static_cast<size_t>(std::llround(g.rho * 30)));

  // Truth maps existing entities one-to-one.
  std::unordered_set<EntityId> seen_b;
  for (const auto& [a, b] : s->truth.a_to_b) {
    EXPECT_TRUE(s->a.ContainsEntity(a));
    EXPECT_TRUE(s->b.ContainsEntity(b));
    EXPECT_TRUE(seen_b.insert(b).second);
  }

  // Record volume ~ Binomial(60, p) per entity per side.
  const double expected = 60.0 * g.p;
  EXPECT_NEAR(s->a.AvgRecordsPerEntity(), expected,
              std::max(3.0, expected * 0.25));
  EXPECT_NEAR(s->b.AvgRecordsPerEntity(), expected,
              std::max(3.0, expected * 0.25));

  // Every emitted record's timestamp exists in the master (modulo the
  // perturbations, which are off here).
  std::unordered_set<int64_t> master_ts;
  for (const Record& r : Master().records()) master_ts.insert(r.timestamp);
  for (const Record& r : s->a.records()) {
    EXPECT_TRUE(master_ts.count(r.timestamp)) << r.timestamp;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SamplerGrid,
    ::testing::Values(GridPoint{0.0, 0.5}, GridPoint{0.3, 0.1},
                      GridPoint{0.3, 0.9}, GridPoint{0.5, 0.3},
                      GridPoint{0.5, 0.5}, GridPoint{0.7, 0.7},
                      GridPoint{0.9, 0.5}, GridPoint{1.0, 1.0}));

TEST(SamplerGridExtra, FullIntersectionFullInclusionPreservesEverything) {
  PairSampleOptions opt;
  opt.entities_per_side = 45;
  opt.intersection_ratio = 1.0;
  opt.inclusion_probability = 1.0;
  opt.min_records = 0;
  auto s = SampleLinkedPair(Master(), opt);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->truth.size(), 45u);
  // Both sides carry the full record load of their entities.
  EXPECT_DOUBLE_EQ(s->a.AvgRecordsPerEntity(), 60.0);
  EXPECT_DOUBLE_EQ(s->b.AvgRecordsPerEntity(), 60.0);
  // With rho = 1 both sides host the same master entities: total record
  // counts match exactly.
  EXPECT_EQ(s->a.num_records(), s->b.num_records());
}

}  // namespace
}  // namespace slim
