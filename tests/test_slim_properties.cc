// Parameterised end-to-end property sweeps over SLIM's configuration
// space: whatever the knobs, the pipeline must stay healthy (valid
// one-to-one matching, positive edge weights, deterministic) and the
// quality must stay high on an easy, well-separated workload.
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/slim.h"
#include "data/cab_generator.h"
#include "data/sampler.h"
#include "eval/metrics.h"

namespace slim {
namespace {

const LinkedPairSample& EasySample() {
  static const LinkedPairSample sample = [] {
    CabGeneratorOptions gopt;
    gopt.num_taxis = 36;
    gopt.duration_days = 2.0;
    gopt.record_interval_seconds = 300.0;
    gopt.seed = 99;
    const LocationDataset master = GenerateCabDataset(gopt);
    PairSampleOptions opt;
    opt.entities_per_side = 18;
    opt.inclusion_probability = 0.6;
    opt.seed = 5;
    auto s = SampleLinkedPair(master, opt);
    SLIM_CHECK(s.ok());
    return std::move(s.value());
  }();
  return sample;
}

void ExpectHealthy(const LinkageResult& r) {
  EXPECT_TRUE(r.matching.IsValidMatching());
  std::unordered_set<EntityId> us, vs;
  for (const auto& link : r.links) {
    EXPECT_TRUE(us.insert(link.u).second);
    EXPECT_TRUE(vs.insert(link.v).second);
    EXPECT_GT(link.score, 0.0);
  }
  for (const auto& e : r.graph.edges()) EXPECT_GT(e.weight, 0.0);
  EXPECT_LE(r.links.size(), r.matching.pairs.size());
  EXPECT_LE(r.candidate_pairs, r.possible_pairs);
}

// --- b parameter sweep (Eq. 2). ---

class BParamSweep : public ::testing::TestWithParam<double> {};

TEST_P(BParamSweep, HealthyAndAccurate) {
  SlimConfig cfg;
  cfg.candidates = CandidateKind::kBruteForce;
  cfg.threads = 2;
  cfg.similarity.b = GetParam();
  auto r = SlimLinker(cfg).Link(EasySample().a, EasySample().b);
  ASSERT_TRUE(r.ok());
  ExpectHealthy(*r);
  EXPECT_GE(EvaluateLinks(r->links, EasySample().truth).f1, 0.8);
}

INSTANTIATE_TEST_SUITE_P(B, BParamSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

// --- Threshold method sweep. ---

class ThresholdMethodSweep
    : public ::testing::TestWithParam<ThresholdMethod> {};

TEST_P(ThresholdMethodSweep, HealthyAndAccurate) {
  SlimConfig cfg;
  cfg.candidates = CandidateKind::kBruteForce;
  cfg.threads = 2;
  cfg.threshold_method = GetParam();
  auto r = SlimLinker(cfg).Link(EasySample().a, EasySample().b);
  ASSERT_TRUE(r.ok());
  ExpectHealthy(*r);
  EXPECT_GE(EvaluateLinks(r->links, EasySample().truth).f1, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Methods, ThresholdMethodSweep,
                         ::testing::Values(ThresholdMethod::kGmmExpectedF1,
                                           ThresholdMethod::kOtsu,
                                           ThresholdMethod::kTwoMeans));

// --- Region-record radius sweep (Sec. 2.1 extension). ---

class RegionRadiusSweep : public ::testing::TestWithParam<double> {};

TEST_P(RegionRadiusSweep, HealthyAndAccurate) {
  SlimConfig cfg;
  cfg.candidates = CandidateKind::kBruteForce;
  cfg.threads = 2;
  cfg.history.spatial_level = 13;
  cfg.history.region_radius_meters = GetParam();
  auto r = SlimLinker(cfg).Link(EasySample().a, EasySample().b);
  ASSERT_TRUE(r.ok());
  ExpectHealthy(*r);
  EXPECT_GE(EvaluateLinks(r->links, EasySample().truth).f1, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Radius, RegionRadiusSweep,
                         ::testing::Values(0.0, 500.0, 2500.0));

// --- Max-speed (alibi) sweep: tighter speed limits must never produce an
// invalid pipeline, and overly tight ones may only reduce scores. ---

class SpeedSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpeedSweep, HealthyAtAnySpeedLimit) {
  SlimConfig cfg;
  cfg.candidates = CandidateKind::kBruteForce;
  cfg.threads = 2;
  cfg.similarity.proximity.max_speed_mps = GetParam();
  auto r = SlimLinker(cfg).Link(EasySample().a, EasySample().b);
  ASSERT_TRUE(r.ok());
  ExpectHealthy(*r);
}

INSTANTIATE_TEST_SUITE_P(Speeds, SpeedSweep,
                         ::testing::Values(5.0, 16.7, 33.3, 100.0));

// --- Cross-config determinism: same config -> bit-identical links. ---

TEST(SlimDeterminism, RepeatedRunsAreIdentical) {
  SlimConfig cfg;
  cfg.candidates = CandidateKind::kLsh;
  cfg.threads = 2;
  auto r1 = SlimLinker(cfg).Link(EasySample().a, EasySample().b);
  auto r2 = SlimLinker(cfg).Link(EasySample().a, EasySample().b);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->links.size(), r2->links.size());
  for (size_t k = 0; k < r1->links.size(); ++k) {
    EXPECT_EQ(r1->links[k], r2->links[k]);
  }
  EXPECT_EQ(r1->stats.record_comparisons, r2->stats.record_comparisons);
  EXPECT_EQ(r1->candidate_pairs, r2->candidate_pairs);
}

// --- Dataset-order invariance: Link(A, B) and Link(B, A) agree on the
// pair set (scores are symmetric; only the orientation flips). ---

TEST(SlimSymmetry, SwappingSidesPreservesThePairSet) {
  SlimConfig cfg;
  cfg.candidates = CandidateKind::kBruteForce;
  cfg.threads = 2;
  auto fwd = SlimLinker(cfg).Link(EasySample().a, EasySample().b);
  auto rev = SlimLinker(cfg).Link(EasySample().b, EasySample().a);
  ASSERT_TRUE(fwd.ok() && rev.ok());
  std::unordered_set<uint64_t> fwd_pairs;
  for (const auto& link : fwd->links) {
    fwd_pairs.insert((static_cast<uint64_t>(link.u) << 32) |
                     static_cast<uint32_t>(link.v));
  }
  EXPECT_EQ(fwd->links.size(), rev->links.size());
  for (const auto& link : rev->links) {
    EXPECT_TRUE(fwd_pairs.count((static_cast<uint64_t>(link.v) << 32) |
                                static_cast<uint32_t>(link.u)))
        << "pair " << link.v << "," << link.u << " missing in forward run";
  }
}

}  // namespace
}  // namespace slim
