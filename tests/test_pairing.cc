#include "core/pairing.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace slim {
namespace {

TEST(MutuallyNearestPairs, EmptySides) {
  EXPECT_TRUE(MutuallyNearestPairs({}, 0, 0).empty());
  EXPECT_TRUE(MutuallyNearestPairs({}, 0, 5).empty());
  EXPECT_TRUE(MutuallyNearestPairs({}, 3, 0).empty());
}

TEST(MutuallyNearestPairs, SinglePair) {
  const auto pairs = MutuallyNearestPairs({7.0}, 1, 1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (BinPair{0, 0}));
}

TEST(MutuallyNearestPairs, PicksGlobalMinimumFirst) {
  // 2x2 matrix; global min at (1, 0).
  const std::vector<double> d = {5.0, 2.0,   // row 0
                                 1.0, 9.0};  // row 1
  const auto pairs = MutuallyNearestPairs(d, 2, 2);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (BinPair{1, 0}));
  EXPECT_EQ(pairs[1], (BinPair{0, 1}));
}

TEST(MutuallyNearestPairs, PaperExampleDodgesOvercounting) {
  // One bin on the left, two on the right at distances d and d+r: MNN pairs
  // only the close one; the far bin stays unmatched (MFN finds it below).
  const std::vector<double> d = {100.0, 40000.0};
  const auto mnn = MutuallyNearestPairs(d, 1, 2);
  ASSERT_EQ(mnn.size(), 1u);
  EXPECT_EQ(mnn[0], (BinPair{0, 0}));
  const auto mfn = MutuallyFurthestPairs(d, 1, 2);
  ASSERT_EQ(mfn.size(), 1u);
  EXPECT_EQ(mfn[0], (BinPair{0, 1}));
}

TEST(MutuallyFurthestPairs, PicksGlobalMaximumFirst) {
  const std::vector<double> d = {5.0, 2.0, 1.0, 9.0};
  const auto pairs = MutuallyFurthestPairs(d, 2, 2);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (BinPair{1, 1}));
  EXPECT_EQ(pairs[1], (BinPair{0, 0}));
}

TEST(AllPairs, FullCartesianProduct) {
  const auto pairs = AllPairs(2, 3);
  EXPECT_EQ(pairs.size(), 6u);
  std::set<BinPair> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(Pairing, DeterministicUnderTies) {
  const std::vector<double> d(9, 1.0);  // all equal
  const auto p1 = MutuallyNearestPairs(d, 3, 3);
  const auto p2 = MutuallyNearestPairs(d, 3, 3);
  EXPECT_EQ(p1, p2);
  // Ties resolve in row-major order: (0,0), (1,1), (2,2).
  ASSERT_EQ(p1.size(), 3u);
  EXPECT_EQ(p1[0], (BinPair{0, 0}));
  EXPECT_EQ(p1[1], (BinPair{1, 1}));
  EXPECT_EQ(p1[2], (BinPair{2, 2}));
}

class PairingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairingProperty, PairsAreDisjointAndCoverSmallerSide) {
  Rng rng(GetParam());
  const size_t m = 1 + rng.NextUint64(8);
  const size_t n = 1 + rng.NextUint64(8);
  std::vector<double> d(m * n);
  for (auto& x : d) x = rng.NextDouble(0.0, 100.0);

  for (bool nearest : {true, false}) {
    const auto pairs = nearest ? MutuallyNearestPairs(d, m, n)
                               : MutuallyFurthestPairs(d, m, n);
    EXPECT_EQ(pairs.size(), std::min(m, n));
    std::set<size_t> rows, cols;
    for (const auto& [r, c] : pairs) {
      EXPECT_LT(r, m);
      EXPECT_LT(c, n);
      EXPECT_TRUE(rows.insert(r).second) << "duplicate row";
      EXPECT_TRUE(cols.insert(c).second) << "duplicate col";
    }
  }
}

TEST_P(PairingProperty, GreedyPrefixOrderingHolds) {
  // Selected distances are non-decreasing for MNN (non-increasing for MFN):
  // each greedy step picks the extreme among remaining pairs.
  Rng rng(GetParam() + 1000);
  const size_t m = 2 + rng.NextUint64(6);
  const size_t n = 2 + rng.NextUint64(6);
  std::vector<double> d(m * n);
  for (auto& x : d) x = rng.NextDouble(0.0, 100.0);

  const auto mnn = MutuallyNearestPairs(d, m, n);
  for (size_t k = 1; k < mnn.size(); ++k) {
    EXPECT_LE(d[mnn[k - 1].first * n + mnn[k - 1].second],
              d[mnn[k].first * n + mnn[k].second] + 1e-12);
  }
  const auto mfn = MutuallyFurthestPairs(d, m, n);
  for (size_t k = 1; k < mfn.size(); ++k) {
    EXPECT_GE(d[mfn[k - 1].first * n + mfn[k - 1].second],
              d[mfn[k].first * n + mfn[k].second] - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairingProperty,
                         ::testing::Range<uint64_t>(1, 16));

TEST(Pairing, DiesOnShapeMismatch) {
  EXPECT_DEATH(MutuallyNearestPairs({1.0, 2.0}, 2, 2), "shape");
}

}  // namespace
}  // namespace slim
