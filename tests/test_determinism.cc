// Thread-count invariance of the pipeline — the acceptance gate for the
// parallel stages: every stage, and Slim::Link end to end, must produce
// bit-identical results at every thread count. Per-shard accumulators with
// ordered merges (common/parallel.h) are the mechanism; these tests are the
// contract.
#include <vector>

#include <gtest/gtest.h>

#include "slim.h"

namespace slim {
namespace {

// A linkage experiment big enough that every parallel stage actually
// shards, on the sparse SM-style workload (the paper's scalability case).
const LinkedPairSample& Sample() {
  static const LinkedPairSample* sample = [] {
    CheckinGeneratorOptions gen;
    gen.num_users = 500;
    gen.seed = 77;
    const LocationDataset master = GenerateCheckinDataset(gen);
    PairSampleOptions sampling;
    sampling.entities_per_side = 220;
    sampling.intersection_ratio = 0.5;
    sampling.inclusion_probability = 0.5;
    sampling.seed = 78;
    auto s = SampleLinkedPair(master, sampling);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return new LinkedPairSample(std::move(s.value()));
  }();
  return *sample;
}

TEST(Determinism, HistorySetIsIdenticalAtEveryThreadCount) {
  const HistoryConfig config;
  const HistorySet reference = HistorySet::Build(Sample().a, config, 1);
  for (int threads : {2, 3, 8}) {
    const HistorySet set = HistorySet::Build(Sample().a, config, threads);
    ASSERT_EQ(set.size(), reference.size()) << threads;
    EXPECT_DOUBLE_EQ(set.avg_bins_per_history(),
                     reference.avg_bins_per_history())
        << threads;
    for (size_t k = 0; k < set.size(); ++k) {
      const MobilityHistory& a = set.histories()[k];
      const MobilityHistory& b = reference.histories()[k];
      ASSERT_EQ(a.entity(), b.entity()) << threads;
      ASSERT_EQ(a.bins(), b.bins()) << threads << " entity " << a.entity();
      // The dataset-level statistics every bin feeds must agree too.
      for (const TimeLocationBin& bin : a.bins()) {
        EXPECT_EQ(set.BinEntityCount(bin.window, bin.cell),
                  reference.BinEntityCount(bin.window, bin.cell));
      }
    }
  }
}

TEST(Determinism, LshIndexIsIdenticalAtEveryThreadCount) {
  const HistoryConfig hconfig;
  const HistorySet set_e = HistorySet::Build(Sample().a, hconfig, 1);
  const HistorySet set_i = HistorySet::Build(Sample().b, hconfig, 1);
  std::vector<LshIndex::Entry> left, right;
  for (const auto& h : set_e.histories()) left.push_back({h.entity(), &h.tree()});
  for (const auto& h : set_i.histories()) right.push_back({h.entity(), &h.tree()});

  const SlimConfig defaults;  // the stock LSH operating point
  const LshIndex reference = LshIndex::Build(left, right, defaults.lsh, 1);
  for (int threads : {2, 5, 8}) {
    const LshIndex index = LshIndex::Build(left, right, defaults.lsh, threads);
    EXPECT_EQ(index.total_candidate_pairs(),
              reference.total_candidate_pairs())
        << threads;
    EXPECT_EQ(index.signature_size(), reference.signature_size());
    EXPECT_EQ(index.num_bands(), reference.num_bands());
    for (const auto& entry : left) {
      ASSERT_EQ(index.CandidatesFor(entry.entity),
                reference.CandidatesFor(entry.entity))
          << threads << " entity " << entry.entity;
      const LshSignature* a = index.LeftSignature(entry.entity);
      const LshSignature* b = reference.LeftSignature(entry.entity);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(a->cells, b->cells);
    }
  }
}

void ExpectIdenticalResults(const LinkageResult& a, const LinkageResult& b,
                            int threads) {
  // links, matching, and graph carry doubles — operator== compares them
  // exactly, which is the point: bit-identical, not approximately equal.
  EXPECT_EQ(a.links, b.links) << threads;
  EXPECT_EQ(a.matching.pairs, b.matching.pairs) << threads;
  EXPECT_DOUBLE_EQ(a.matching.total_weight, b.matching.total_weight);
  EXPECT_EQ(a.graph.edges(), b.graph.edges()) << threads;
  EXPECT_EQ(a.candidate_pairs, b.candidate_pairs) << threads;
  EXPECT_EQ(a.possible_pairs, b.possible_pairs) << threads;
  EXPECT_EQ(a.stats.record_comparisons, b.stats.record_comparisons);
  EXPECT_EQ(a.stats.alibi_pairs, b.stats.alibi_pairs);
  EXPECT_EQ(a.stats.entity_pairs, b.stats.entity_pairs);
  EXPECT_EQ(a.threshold_valid, b.threshold_valid) << threads;
  if (a.threshold_valid && b.threshold_valid) {
    EXPECT_DOUBLE_EQ(a.threshold.threshold, b.threshold.threshold);
  }
}

TEST(Determinism, LinkIsIdenticalAtThreads128) {
  SlimConfig config;  // stock pipeline, LSH on
  config.threads = 1;
  auto reference = SlimLinker(config).Link(Sample().a, Sample().b);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_GT(reference->links.size(), 0u);

  for (int threads : {2, 8}) {
    config.threads = threads;
    auto result = SlimLinker(config).Link(Sample().a, Sample().b);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectIdenticalResults(*reference, *result, threads);
  }
}

TEST(Determinism, BruteForceLinkIsIdenticalAcrossThreadCounts) {
  // Without LSH the scoring loop covers the full cross product — the
  // heaviest sharded stage gets the same invariance check.
  SlimConfig config;
  config.use_lsh = false;
  config.threads = 1;
  auto reference = SlimLinker(config).Link(Sample().a, Sample().b);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  config.threads = 8;
  auto result = SlimLinker(config).Link(Sample().a, Sample().b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectIdenticalResults(*reference, *result, 8);
}

}  // namespace
}  // namespace slim
