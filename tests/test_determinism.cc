// Thread-count invariance of the pipeline — the acceptance gate for the
// parallel stages: every stage, and Slim::Link end to end, must produce
// bit-identical results at every thread count, for every candidate
// generator. Per-shard accumulators with ordered merges (common/parallel.h)
// are the mechanism; these tests are the contract.
//
// The *Golden* suite additionally pins the LSH and brute-force links to the
// committed pre-refactor output on the committed quick-bench dataset
// (tests/golden/): a core refactor that changes any link score by even one
// ULP fails here.
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "slim.h"

namespace slim {
namespace {

// A linkage experiment big enough that every parallel stage actually
// shards, on the sparse SM-style workload (the paper's scalability case).
const LinkedPairSample& Sample() {
  static const LinkedPairSample* sample = [] {
    CheckinGeneratorOptions gen;
    gen.num_users = 500;
    gen.seed = 77;
    const LocationDataset master = GenerateCheckinDataset(gen);
    PairSampleOptions sampling;
    sampling.entities_per_side = 220;
    sampling.intersection_ratio = 0.5;
    sampling.inclusion_probability = 0.5;
    sampling.seed = 78;
    auto s = SampleLinkedPair(master, sampling);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return new LinkedPairSample(std::move(s.value()));
  }();
  return *sample;
}

TEST(Determinism, HistorySetIsIdenticalAtEveryThreadCount) {
  const HistoryConfig config;
  const HistorySet reference = HistorySet::Build(Sample().a, config, 1);
  for (int threads : {2, 3, 8}) {
    const HistorySet set = HistorySet::Build(Sample().a, config, threads);
    ASSERT_EQ(set.size(), reference.size()) << threads;
    EXPECT_DOUBLE_EQ(set.avg_bins_per_history(),
                     reference.avg_bins_per_history())
        << threads;
    for (size_t k = 0; k < set.size(); ++k) {
      const MobilityHistory& a = set.histories()[k];
      const MobilityHistory& b = reference.histories()[k];
      ASSERT_EQ(a.entity(), b.entity()) << threads;
      ASSERT_EQ(a.bins(), b.bins()) << threads << " entity " << a.entity();
      // The dataset-level statistics every bin feeds must agree too.
      for (const TimeLocationBin& bin : a.bins()) {
        EXPECT_EQ(set.BinEntityCount(bin.window, bin.cell),
                  reference.BinEntityCount(bin.window, bin.cell));
      }
    }
  }
}

TEST(Determinism, LinkageContextIsIdenticalAtEveryThreadCount) {
  const HistoryConfig config;
  const LinkageContext reference =
      LinkageContext::Build(Sample().a, Sample().b, config, 1);
  for (int threads : {2, 3, 8}) {
    const LinkageContext ctx =
        LinkageContext::Build(Sample().a, Sample().b, config, threads);
    ASSERT_EQ(ctx.vocab.size(), reference.vocab.size()) << threads;
    for (BinId b = 0; b < ctx.vocab.size(); ++b) {
      ASSERT_EQ(ctx.vocab.window(b), reference.vocab.window(b));
      ASSERT_EQ(ctx.vocab.cell(b), reference.vocab.cell(b));
    }
    auto expect_same_store = [&](const HistoryStore& a,
                                 const HistoryStore& b) {
      ASSERT_EQ(a.size(), b.size()) << threads;
      EXPECT_DOUBLE_EQ(a.avg_bins(), b.avg_bins()) << threads;
      ASSERT_EQ(a.entity_ids(), b.entity_ids()) << threads;
      ASSERT_EQ(a.bin_ids(), b.bin_ids()) << threads;
      ASSERT_EQ(a.bin_counts(), b.bin_counts()) << threads;
      for (BinId bin = 0; bin < a.idf_values().size(); ++bin) {
        ASSERT_EQ(a.idf(bin), b.idf(bin)) << threads << " bin " << bin;
      }
    };
    expect_same_store(ctx.store_e, reference.store_e);
    expect_same_store(ctx.store_i, reference.store_i);
  }
}

TEST(Determinism, LshIndexIsIdenticalAtEveryThreadCount) {
  const HistoryConfig hconfig;
  const HistorySet set_e = HistorySet::Build(Sample().a, hconfig, 1);
  const HistorySet set_i = HistorySet::Build(Sample().b, hconfig, 1);
  std::vector<LshIndex::Entry> left, right;
  for (const auto& h : set_e.histories()) {
    left.push_back({h.entity(), &h.tree()});
  }
  for (const auto& h : set_i.histories()) {
    right.push_back({h.entity(), &h.tree()});
  }

  const SlimConfig defaults;  // the stock LSH operating point
  const LshIndex reference = LshIndex::Build(left, right, defaults.lsh, 1);
  for (int threads : {2, 5, 8}) {
    const LshIndex index = LshIndex::Build(left, right, defaults.lsh, threads);
    EXPECT_EQ(index.total_candidate_pairs(),
              reference.total_candidate_pairs())
        << threads;
    EXPECT_EQ(index.signature_size(), reference.signature_size());
    EXPECT_EQ(index.num_bands(), reference.num_bands());
    for (const auto& entry : left) {
      ASSERT_EQ(index.CandidatesFor(entry.entity),
                reference.CandidatesFor(entry.entity))
          << threads << " entity " << entry.entity;
      const LshSignature* a = index.LeftSignature(entry.entity);
      const LshSignature* b = reference.LeftSignature(entry.entity);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(a->cells, b->cells);
    }
  }
}

void ExpectIdenticalResults(const LinkageResult& a, const LinkageResult& b,
                            int threads) {
  // links, matching, and graph carry doubles — operator== compares them
  // exactly, which is the point: bit-identical, not approximately equal.
  EXPECT_EQ(a.links, b.links) << threads;
  EXPECT_EQ(a.matching.pairs, b.matching.pairs) << threads;
  EXPECT_DOUBLE_EQ(a.matching.total_weight, b.matching.total_weight);
  EXPECT_EQ(a.graph.edges(), b.graph.edges()) << threads;
  EXPECT_EQ(a.candidate_pairs, b.candidate_pairs) << threads;
  EXPECT_EQ(a.possible_pairs, b.possible_pairs) << threads;
  EXPECT_EQ(a.stats.record_comparisons, b.stats.record_comparisons);
  EXPECT_EQ(a.stats.alibi_pairs, b.stats.alibi_pairs);
  EXPECT_EQ(a.stats.entity_pairs, b.stats.entity_pairs);
  // NOTE: stats.cache_hits / cache_misses are deliberately NOT compared —
  // the hit/miss split depends on how entities shard over threads (each
  // shard warms its own CellDistanceCache). Their sum is sharding-invariant
  // whenever every comparison goes through the cache.
  EXPECT_EQ(a.stats.cache_hits + a.stats.cache_misses,
            b.stats.cache_hits + b.stats.cache_misses)
      << threads;
  EXPECT_EQ(a.threshold_valid, b.threshold_valid) << threads;
  if (a.threshold_valid && b.threshold_valid) {
    EXPECT_DOUBLE_EQ(a.threshold.threshold, b.threshold.threshold);
  }
}

// Every candidate generator must produce a thread-count-invariant linkage.
class GeneratorDeterminism
    : public ::testing::TestWithParam<CandidateKind> {};

TEST_P(GeneratorDeterminism, LinkIsIdenticalAtThreads128) {
  SlimConfig config;  // stock pipeline
  config.candidates = GetParam();
  config.threads = 1;
  auto reference = SlimLinker(config).Link(Sample().a, Sample().b);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_GT(reference->links.size(), 0u);
  EXPECT_EQ(reference->candidates_used, GetParam());

  for (int threads : {2, 8}) {
    config.threads = threads;
    auto result = SlimLinker(config).Link(Sample().a, Sample().b);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectIdenticalResults(*reference, *result, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorDeterminism,
                         ::testing::Values(CandidateKind::kLsh,
                                           CandidateKind::kBruteForce,
                                           CandidateKind::kGrid),
                         [](const auto& pinfo) {
                           return std::string(CandidateKindName(pinfo.param));
                         });

// ---- Golden bit-identity against the committed pre-refactor output. ----

std::string GoldenPath(const char* name) {
  return std::string(SLIM_TEST_GOLDEN_DIR) + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Formats links exactly as tests/golden/quick_links_*.csv were written:
// u,v,score at 17 fixed decimals (locale-safe, enough digits that equal
// strings mean bit-equal doubles for these magnitudes).
std::vector<std::string> FormatLinks(
    const std::vector<LinkedEntityPair>& links) {
  std::vector<std::string> lines;
  lines.reserve(links.size());
  for (const auto& link : links) {
    lines.push_back(std::to_string(link.u) + "," + std::to_string(link.v) +
                    "," + FormatFixed(link.score, 17));
  }
  return lines;
}

class GoldenLinks : public ::testing::Test {
 protected:
  static const LocationDataset& A() {
    static const LocationDataset* a = Load("quick_a.csv", "A");
    return *a;
  }
  static const LocationDataset& B() {
    static const LocationDataset* b = Load("quick_b.csv", "B");
    return *b;
  }

 private:
  static const LocationDataset* Load(const char* name, const char* label) {
    auto ds = ReadDataset(GoldenPath(name), label);
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    return new LocationDataset(std::move(ds.value()));
  }
};

TEST_F(GoldenLinks, LshLinksMatchPreRefactorOutput) {
  SlimConfig config;  // stock defaults, LSH on
  config.threads = 1;
  auto result = SlimLinker(config).Link(A(), B());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->candidate_pairs, 1021u);  // pre-refactor LSH filter size
  EXPECT_EQ(FormatLinks(result->links),
            ReadLines(GoldenPath("quick_links_lsh.csv")));
}

TEST_F(GoldenLinks, BruteForceLinksMatchPreRefactorOutput) {
  SlimConfig config;
  config.candidates = CandidateKind::kBruteForce;
  config.threads = 1;
  auto result = SlimLinker(config).Link(A(), B());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(FormatLinks(result->links),
            ReadLines(GoldenPath("quick_links_brute.csv")));
}

TEST_F(GoldenLinks, GoldenRunsAreThreadCountInvariantToo) {
  for (CandidateKind kind :
       {CandidateKind::kLsh, CandidateKind::kBruteForce,
        CandidateKind::kGrid}) {
    SlimConfig config;
    config.candidates = kind;
    config.threads = 1;
    auto r1 = SlimLinker(config).Link(A(), B());
    config.threads = 8;
    auto r8 = SlimLinker(config).Link(A(), B());
    ASSERT_TRUE(r1.ok() && r8.ok());
    ExpectIdenticalResults(*r1, *r8, 8);
  }
}

// ---- Kernel matrix: every SIMD variant must reproduce the goldens. ----
//
// The scoring kernels (core/score_kernel.h) promise bit-identical scores at
// every variant; this is the end-to-end enforcement. Each supported kernel
// runs every candidate generator at threads {1, 8} and must match the same
// committed golden link files the scalar reference pins. Variants the CPU
// cannot execute are skipped (never failed) so the matrix is portable.
class KernelGoldenLinks : public GoldenLinks,
                          public ::testing::WithParamInterface<ScoreKernel> {};

TEST_P(KernelGoldenLinks, LinksMatchGoldensForEveryGeneratorAndThreads) {
  const ScoreKernel kernel = GetParam();
  if (!ScoreKernelSupported(kernel)) {
    GTEST_SKIP() << "CPU lacks " << ScoreKernelName(kernel);
  }
  const struct {
    CandidateKind kind;
    const char* golden;
  } cases[] = {
      {CandidateKind::kLsh, "quick_links_lsh.csv"},
      {CandidateKind::kBruteForce, "quick_links_brute.csv"},
      {CandidateKind::kGrid, "quick_links_grid.csv"},
  };
  for (const auto& c : cases) {
    for (int threads : {1, 8}) {
      SlimConfig config;
      config.candidates = c.kind;
      config.similarity.kernel = kernel;
      config.threads = threads;
      auto result = SlimLinker(config).Link(A(), B());
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(FormatLinks(result->links), ReadLines(GoldenPath(c.golden)))
          << ScoreKernelName(kernel) << "/" << CandidateKindName(c.kind)
          << "/threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelGoldenLinks,
                         ::testing::Values(ScoreKernel::kScalar,
                                           ScoreKernel::kSse42,
                                           ScoreKernel::kAvx2),
                         [](const auto& pinfo) {
                           return std::string(ScoreKernelName(pinfo.param));
                         });

// ---- Commute-generator golden: seeded byte-stability. ----

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// The exact options tests/golden/commute_small.csv was generated with
// (slim_generate --workload commute --entities 8 --days 2 --seed 44).
CommuteGeneratorOptions GoldenCommuteOptions() {
  CommuteGeneratorOptions opt;
  opt.num_commuters = 8;
  opt.duration_days = 2.0;  // seed stays at the default 44
  return opt;
}

TEST(GoldenCommute, DatasetIsByteStable) {
  // Regenerating the committed golden must reproduce it byte for byte: any
  // change to the generator's sampling order, RNG, or the CSV writer's
  // formatting fails here and demands a deliberate golden refresh.
  const LocationDataset ds = GenerateCommuteDataset(GoldenCommuteOptions());
  const std::string path = ::testing::TempDir() + "commute_small_regen.csv";
  const Status st = WriteDataset(ds, path, DatasetFormat::kCsv);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(ReadFileBytes(path),
            ReadFileBytes(GoldenPath("commute_small.csv")));
}

TEST(GoldenCommute, LinkageIsThreadCountInvariant) {
  // The commute workload joins the determinism matrix: an experiment
  // sampled from the committed golden must link bit-identically at every
  // thread count.
  auto master = ReadDataset(GoldenPath("commute_small.csv"), "commute");
  ASSERT_TRUE(master.ok()) << master.status().ToString();
  PairSampleOptions sampling;
  sampling.seed = 9;
  auto sample = SampleLinkedPair(*master, sampling);
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();

  SlimConfig config;
  config.threads = 1;
  auto reference = SlimLinker(config).Link(sample->a, sample->b);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_GT(reference->links.size(), 0u);
  for (int threads : {2, 8}) {
    config.threads = threads;
    auto result = SlimLinker(config).Link(sample->a, sample->b);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectIdenticalResults(*reference, *result, threads);
  }
}

}  // namespace
}  // namespace slim
