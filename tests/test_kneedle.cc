#include "stats/kneedle.h"

#include <cmath>

#include <gtest/gtest.h>

namespace slim {
namespace {

TEST(Kneedle, FindsElbowOfConvexDecreasingCurve) {
  // y = 1/x has a pronounced elbow near the small-x end.
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(1.0 / i);
  }
  KneedleOptions opt;
  opt.curve = KneedleCurve::kConvexDecreasing;
  const auto k = FindKneedle(x, y, opt);
  ASSERT_TRUE(k.has_value());
  // The canonical 1/x knee on [1,20] is at x ~ 3..5.
  EXPECT_GE(x[*k], 2.0);
  EXPECT_LE(x[*k], 6.0);
}

TEST(Kneedle, FindsKneeOfConcaveIncreasingCurve) {
  // y = 1 - exp(-x): diminishing returns, knee around x ~ 1-3.
  std::vector<double> x, y;
  for (int i = 0; i <= 40; ++i) {
    x.push_back(i * 0.25);
    y.push_back(1.0 - std::exp(-i * 0.25));
  }
  KneedleOptions opt;
  opt.curve = KneedleCurve::kConcaveIncreasing;
  const auto k = FindKneedle(x, y, opt);
  ASSERT_TRUE(k.has_value());
  EXPECT_GE(x[*k], 0.5);
  EXPECT_LE(x[*k], 3.5);
}

TEST(Kneedle, StraightLineHasNoKnee) {
  std::vector<double> x, y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(5.0 - 0.5 * i);
  }
  EXPECT_FALSE(FindKneedle(x, y).has_value());
}

TEST(Kneedle, FlatLineHasNoKnee) {
  std::vector<double> x = {0, 1, 2, 3, 4};
  std::vector<double> y = {2, 2, 2, 2, 2};
  EXPECT_FALSE(FindKneedle(x, y).has_value());
}

TEST(Kneedle, TooFewPointsReturnsNullopt) {
  EXPECT_FALSE(FindKneedle({0, 1}, {5, 1}).has_value());
}

TEST(Kneedle, StepCurveKneesAtTheStep) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(i < 5 ? 10.0 - 2.0 * i : 10.0 - 2.0 * 5 - 0.01 * (i - 5));
  }
  const auto k = FindKneedle(x, y);
  ASSERT_TRUE(k.has_value());
  EXPECT_NEAR(x[*k], 5.0, 1.5);
}

TEST(Kneedle, DiesOnUnsortedX) {
  EXPECT_DEATH(FindKneedle({0, 2, 1}, {3, 2, 1}), "strictly increasing");
}

TEST(Kneedle, DiesOnSizeMismatch) {
  EXPECT_DEATH(FindKneedle({0, 1, 2}, {3, 2}), "mismatch");
}

}  // namespace
}  // namespace slim
