#include "geo/covering.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/history.h"

namespace slim {
namespace {

TEST(Covering, SingleCellForTinyRect) {
  const LatLng p{37.7, -122.4};
  const CellId home = CellId::FromLatLng(p, 12);
  LatLngRect r;
  r.lat_lo = p.lat_deg - 1e-7;
  r.lat_hi = p.lat_deg + 1e-7;
  r.lng_lo = p.lng_deg - 1e-7;
  r.lng_hi = p.lng_deg + 1e-7;
  const auto cells = CellsCoveringRect(r, 12);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], home);
}

TEST(Covering, RectSpanningCellBoundaryGetsBothCells) {
  const CellId c = CellId::FromLatLng({37.7, -122.4}, 12);
  const LatLngRect b = c.Bounds();
  LatLngRect r;
  r.lat_lo = b.lat_hi - 1e-6;  // straddles the northern edge
  r.lat_hi = b.lat_hi + 1e-6;
  r.lng_lo = b.lng_lo + 1e-6;
  r.lng_hi = b.lng_lo + 2e-6;
  const auto cells = CellsCoveringRect(r, 12);
  EXPECT_EQ(cells.size(), 2u);
}

TEST(Covering, CellsContainTheirPartOfTheRect) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    LatLngRect r;
    const double lat = rng.NextDouble(-60, 60);
    const double lng = rng.NextDouble(-170, 170);
    r.lat_lo = lat;
    r.lat_hi = lat + rng.NextDouble(0.0, 0.2);
    r.lng_lo = lng;
    r.lng_hi = lng + rng.NextDouble(0.0, 0.2);
    const int level = 10;
    const auto cells = CellsCoveringRect(r, level);
    ASSERT_FALSE(cells.empty());
    // The rect's corners must be inside the covering.
    for (const LatLng corner : {LatLng{r.lat_lo, r.lng_lo},
                                LatLng{r.lat_hi, r.lng_hi},
                                LatLng{r.lat_lo, r.lng_hi},
                                LatLng{r.lat_hi, r.lng_lo}}) {
      const CellId c = CellId::FromLatLng(corner, level);
      EXPECT_NE(std::find(cells.begin(), cells.end(), c), cells.end());
    }
    // No duplicates.
    auto sorted = cells;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(Covering, WrapsAcrossAntimeridian) {
  LatLngRect r;
  r.lat_lo = 0.0;
  r.lat_hi = 0.01;
  r.lng_lo = 179.95;
  r.lng_hi = -179.95;  // crosses the antimeridian
  const auto cells = CellsCoveringRect(r, 12);
  EXPECT_GE(cells.size(), 2u);
  bool east = false, west = false;
  for (const CellId c : cells) {
    const double lng = c.CenterLatLng().lng_deg;
    east |= lng > 0;
    west |= lng < 0;
  }
  EXPECT_TRUE(east);
  EXPECT_TRUE(west);
}

TEST(Covering, DiscContainsItsCenterCell) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const LatLng center{rng.NextDouble(-60, 60), rng.NextDouble(-170, 170)};
    const auto cells = CellsCoveringDisc(center, 5000.0, 12);
    const CellId cc = CellId::FromLatLng(center, 12);
    EXPECT_NE(std::find(cells.begin(), cells.end(), cc), cells.end());
  }
}

TEST(Covering, DiscCoverageGrowsWithRadius) {
  const LatLng center{37.7, -122.4};
  const auto small = CellsCoveringDisc(center, 100.0, 14);
  const auto big = CellsCoveringDisc(center, 10000.0, 14);
  EXPECT_LT(small.size(), big.size());
}

TEST(Covering, ZeroRadiusDiscIsOneCell) {
  const auto cells = CellsCoveringDisc({37.7, -122.4}, 0.0, 12);
  EXPECT_EQ(cells.size(), 1u);
}

TEST(Covering, DiesWhenExceedingMaxCells) {
  LatLngRect r;
  r.lat_lo = -80;
  r.lat_hi = 80;
  r.lng_lo = -179;
  r.lng_hi = 179;
  EXPECT_DEATH(CellsCoveringRect(r, 20, 1024), "max_cells");
}

// --- The region-records extension (paper Sec. 2.1) through histories. ---

TEST(RegionRecords, RecordSpansMultipleBins) {
  LocationDataset ds("region");
  ds.Add(1, {37.7, -122.4}, 100);
  ds.Finalize();

  HistoryConfig point_cfg;
  point_cfg.spatial_level = 14;
  HistoryConfig region_cfg = point_cfg;
  region_cfg.region_radius_meters = 3000.0;  // level-14 cells are ~1.2 km

  const HistorySet points = HistorySet::Build(ds, point_cfg);
  const HistorySet regions = HistorySet::Build(ds, region_cfg);
  EXPECT_EQ(points.Find(1)->num_bins(), 1u);
  EXPECT_GT(regions.Find(1)->num_bins(), 4u);
  // All bins sit in the same window.
  for (const auto& bin : regions.Find(1)->bins()) {
    EXPECT_EQ(bin.window, 0);
  }
}

TEST(RegionRecords, RegionOverlapMakesBoundaryNeighborsMatchExactly) {
  // Two entities on either side of a cell boundary: as points they occupy
  // different cells; as regions their bins overlap and proximity becomes
  // exact (distance 0 via a shared cell).
  const CellId cell = CellId::FromLatLng({37.7, -122.4}, 14);
  const LatLngRect b = cell.Bounds();
  LocationDataset ds("region");
  ds.Add(1, {b.lat_hi - 1e-5, -122.4}, 100);  // just south of the edge
  ds.Add(2, {b.lat_hi + 1e-5, -122.4}, 100);  // just north of the edge
  ds.Finalize();

  HistoryConfig cfg;
  cfg.spatial_level = 14;
  cfg.region_radius_meters = 500.0;
  const HistorySet set = HistorySet::Build(ds, cfg);
  // The two entities share at least one bin.
  const auto& b1 = set.Find(1)->bins();
  const auto& b2 = set.Find(2)->bins();
  bool shared = false;
  for (const auto& x : b1) {
    for (const auto& y : b2) shared |= (x.cell == y.cell);
  }
  EXPECT_TRUE(shared);
}

}  // namespace
}  // namespace slim
