#include "geo/cell_id.h"

#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace slim {
namespace {

TEST(CellId, DefaultIsInvalid) {
  CellId c;
  EXPECT_FALSE(c.IsValid());
  EXPECT_EQ(c.raw(), 0u);
}

TEST(CellId, Level0IsOneCellCoveringEverything) {
  const CellId a = CellId::FromLatLng({89.0, 179.0}, 0);
  const CellId b = CellId::FromLatLng({-89.0, -179.0}, 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.level(), 0);
}

TEST(CellId, FromLatLngRoundTripsThroughCenter) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const LatLng p{rng.NextDouble(-89.9, 89.9), rng.NextDouble(-180, 179.9)};
    const int level = static_cast<int>(rng.NextInt64(1, CellId::kMaxLevel));
    const CellId c = CellId::FromLatLng(p, level);
    ASSERT_TRUE(c.IsValid());
    // The center of the containing cell maps back to the same cell.
    EXPECT_EQ(CellId::FromLatLng(c.CenterLatLng(), level), c);
  }
}

TEST(CellId, BoundsContainTheOriginalPoint) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const LatLng p{rng.NextDouble(-89.9, 89.9), rng.NextDouble(-180, 179.9)};
    const int level = static_cast<int>(rng.NextInt64(0, 20));
    const LatLngRect r = CellId::FromLatLng(p, level).Bounds();
    EXPECT_LE(r.lat_lo, p.lat_deg);
    EXPECT_GE(r.lat_hi, p.lat_deg);
    EXPECT_LE(r.lng_lo, p.lng_deg);
    EXPECT_GE(r.lng_hi, p.lng_deg);
  }
}

TEST(CellId, ParentContainsChild) {
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const LatLng p{rng.NextDouble(-89.9, 89.9), rng.NextDouble(-180, 179.9)};
    const CellId leaf = CellId::FromLatLng(p, 20);
    for (int lvl = 0; lvl <= 20; ++lvl) {
      const CellId anc = leaf.Parent(lvl);
      EXPECT_EQ(anc.level(), lvl);
      EXPECT_TRUE(anc.Contains(leaf));
      EXPECT_EQ(anc, CellId::FromLatLng(p, lvl));
    }
  }
}

TEST(CellId, ChildrenPartitionParent) {
  const CellId parent = CellId::FromLatLng({37.7, -122.4}, 10);
  std::unordered_set<CellId> kids;
  for (int k = 0; k < 4; ++k) {
    const CellId child = parent.Child(k);
    EXPECT_EQ(child.level(), 11);
    EXPECT_EQ(child.Parent(), parent);
    EXPECT_TRUE(parent.Contains(child));
    kids.insert(child);
  }
  EXPECT_EQ(kids.size(), 4u);
}

TEST(CellId, ContainsIsReflexiveAndNotSymmetricAcrossLevels) {
  const CellId c = CellId::FromLatLng({10, 10}, 8);
  EXPECT_TRUE(c.Contains(c));
  const CellId child = c.Child(0);
  EXPECT_TRUE(c.Contains(child));
  EXPECT_FALSE(child.Contains(c));
}

TEST(CellId, TokenRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const LatLng p{rng.NextDouble(-89.9, 89.9), rng.NextDouble(-180, 179.9)};
    const CellId c =
        CellId::FromLatLng(p, static_cast<int>(rng.NextInt64(0, 28)));
    EXPECT_EQ(CellId::FromToken(c.ToToken()), c);
  }
}

TEST(CellId, FromTokenRejectsGarbage) {
  EXPECT_FALSE(CellId::FromToken("").IsValid());
  EXPECT_FALSE(CellId::FromToken("zzzz").IsValid());
  EXPECT_FALSE(CellId::FromToken("0").IsValid());
  EXPECT_FALSE(CellId::FromToken("12345678901234567").IsValid());  // 17 chars
}

TEST(CellId, FromRawValidation) {
  EXPECT_FALSE(CellId::FromRaw(0).IsValid());
  const CellId good = CellId::FromIndices(3, 2, 5);
  EXPECT_TRUE(CellId::FromRaw(good.raw()).IsValid());
  // Index out of range for the level must be rejected.
  const uint64_t bogus = (1ULL << 62) | (3ULL << 56) | (9ULL << 28);
  EXPECT_FALSE(CellId::FromRaw(bogus).IsValid());
}

TEST(CellDistance, ZeroForSameAndNestedCells) {
  const CellId c = CellId::FromLatLng({37.7, -122.4}, 12);
  EXPECT_DOUBLE_EQ(MinDistanceMeters(c, c), 0.0);
  EXPECT_DOUBLE_EQ(MinDistanceMeters(c, c.Parent(8)), 0.0);
  EXPECT_DOUBLE_EQ(MinDistanceMeters(c.Parent(8), c), 0.0);
}

TEST(CellDistance, ZeroForTouchingNeighbors) {
  const CellId c = CellId::FromIndices(12, 1000, 1000);
  const CellId east = CellId::FromIndices(12, 1000, 1001);
  EXPECT_DOUBLE_EQ(MinDistanceMeters(c, east), 0.0);
}

TEST(CellDistance, SymmetricAndNonNegative) {
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const CellId a = CellId::FromLatLng(
        {rng.NextDouble(-80, 80), rng.NextDouble(-180, 179.9)},
        static_cast<int>(rng.NextInt64(4, 16)));
    const CellId b = CellId::FromLatLng(
        {rng.NextDouble(-80, 80), rng.NextDouble(-180, 179.9)},
        static_cast<int>(rng.NextInt64(4, 16)));
    const double d = MinDistanceMeters(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_DOUBLE_EQ(d, MinDistanceMeters(b, a));
  }
}

TEST(CellDistance, MinDistanceNeverExceedsCenterDistance) {
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    const CellId a = CellId::FromLatLng(
        {rng.NextDouble(-80, 80), rng.NextDouble(-180, 179.9)}, 12);
    const CellId b = CellId::FromLatLng(
        {rng.NextDouble(-80, 80), rng.NextDouble(-180, 179.9)}, 12);
    EXPECT_LE(MinDistanceMeters(a, b), CenterDistanceMeters(a, b) + 1e-6);
  }
}

TEST(CellDistance, MatchesPointDistanceForFarApartSmallCells) {
  // For tiny cells far apart, min cell distance ~ point distance.
  const LatLng pa{37.7749, -122.4194};  // SF
  const LatLng pb{34.0522, -118.2437};  // LA
  const CellId a = CellId::FromLatLng(pa, 24);
  const CellId b = CellId::FromLatLng(pb, 24);
  const double point_d = HaversineMeters(pa, pb);
  EXPECT_NEAR(MinDistanceMeters(a, b), point_d, point_d * 0.001);
}

TEST(CellDistance, HandlesAntimeridianWrap) {
  // Cells on either side of the antimeridian are close, not ~40,000 km
  // apart.
  const CellId west = CellId::FromLatLng({0.0, 179.99}, 12);
  const CellId east = CellId::FromLatLng({0.0, -179.99}, 12);
  EXPECT_LT(MinDistanceMeters(west, east), 10000.0);
}

TEST(CellDistance, GrowsWithSeparation) {
  const CellId base = CellId::FromLatLng({37.7, -122.4}, 14);
  double prev = -1.0;
  for (double offset : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    const CellId other = CellId::FromLatLng({37.7 + offset, -122.4}, 14);
    const double d = MinDistanceMeters(base, other);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(CellLatExtent, HalvesPerLevel) {
  const double l10 = CellLatExtentMeters(10);
  const double l11 = CellLatExtentMeters(11);
  EXPECT_NEAR(l10 / l11, 2.0, 1e-9);
  // Level 12 latitude extent is ~4.9 km on our 2^L x 2^L grid.
  EXPECT_NEAR(CellLatExtentMeters(12), 4885.0, 10.0);
}

TEST(CellId, HashSpreadsValues) {
  std::unordered_set<size_t> hashes;
  std::hash<CellId> h;
  for (uint64_t i = 0; i < 1000; ++i) {
    hashes.insert(h(CellId::FromIndices(14, i, i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
}  // namespace slim
