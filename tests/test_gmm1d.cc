#include "stats/gmm1d.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace slim {
namespace {

std::vector<double> Bimodal(double mu1, double sigma1, int n1, double mu2,
                            double sigma2, int n2, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(static_cast<size_t>(n1 + n2));
  for (int i = 0; i < n1; ++i) v.push_back(mu1 + sigma1 * rng.NextGaussian());
  for (int i = 0; i < n2; ++i) v.push_back(mu2 + sigma2 * rng.NextGaussian());
  return v;
}

TEST(Gaussian1D, PdfAndCdfBasics) {
  Gaussian1D g{1.0, 0.0, 1.0};
  EXPECT_NEAR(g.Pdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(g.Cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(g.Cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(g.Cdf(-1.96), 0.025, 1e-3);
}

TEST(FitGmm1D, RecoversWellSeparatedComponents) {
  const auto v = Bimodal(0.0, 1.0, 400, 50.0, 2.0, 600, 3);
  auto fit = FitGmm1D(v);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const auto& gmm = *fit;
  ASSERT_EQ(gmm.components.size(), 2u);
  EXPECT_NEAR(gmm.components[0].mean, 0.0, 0.5);
  EXPECT_NEAR(gmm.components[1].mean, 50.0, 0.5);
  EXPECT_NEAR(gmm.components[0].weight, 0.4, 0.05);
  EXPECT_NEAR(gmm.components[1].weight, 0.6, 0.05);
  EXPECT_NEAR(std::sqrt(gmm.components[0].variance), 1.0, 0.3);
  EXPECT_NEAR(std::sqrt(gmm.components[1].variance), 2.0, 0.5);
}

TEST(FitGmm1D, WeightsSumToOne) {
  const auto v = Bimodal(0, 1, 100, 10, 1, 100, 5);
  auto fit = FitGmm1D(v);
  ASSERT_TRUE(fit.ok());
  double sum = 0.0;
  for (const auto& c : fit->components) sum += c.weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FitGmm1D, ComponentsSortedByMean) {
  const auto v = Bimodal(30, 1, 100, -5, 1, 100, 7);
  auto fit = FitGmm1D(v);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->components[0].mean, fit->components[1].mean);
}

TEST(FitGmm1D, MixtureCdfIsMonotoneAndNormalised) {
  const auto v = Bimodal(0, 1, 200, 20, 3, 200, 9);
  auto fit = FitGmm1D(v);
  ASSERT_TRUE(fit.ok());
  double prev = -1.0;
  for (double x = -10.0; x <= 40.0; x += 0.5) {
    const double c = fit->Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  EXPECT_NEAR(fit->Cdf(-1000.0), 0.0, 1e-9);
  EXPECT_NEAR(fit->Cdf(1000.0), 1.0, 1e-9);
}

TEST(FitGmm1D, ResponsibilitiesPartitionUnity) {
  const auto v = Bimodal(0, 1, 200, 20, 3, 200, 11);
  auto fit = FitGmm1D(v);
  ASSERT_TRUE(fit.ok());
  for (double x : {-2.0, 5.0, 10.0, 19.0, 30.0}) {
    const double r0 = fit->Responsibility(0, x);
    const double r1 = fit->Responsibility(1, x);
    EXPECT_NEAR(r0 + r1, 1.0, 1e-9);
    EXPECT_GE(r0, 0.0);
    EXPECT_GE(r1, 0.0);
  }
  // Points near a component's mean belong to it.
  EXPECT_GT(fit->Responsibility(0, 0.0), 0.99);
  EXPECT_GT(fit->Responsibility(1, 20.0), 0.99);
}

TEST(FitGmm1D, LogLikelihoodNonDecreasingAcrossRefits) {
  // EM's defining property: a longer run can't end with a worse fit.
  const auto v = Bimodal(0, 2, 150, 8, 2, 150, 13);
  GmmFitOptions one_iter;
  one_iter.max_iterations = 1;
  GmmFitOptions many;
  many.max_iterations = 200;
  auto f1 = FitGmm1D(v, one_iter);
  auto f2 = FitGmm1D(v, many);
  ASSERT_TRUE(f1.ok() && f2.ok());
  EXPECT_GE(f2->log_likelihood, f1->log_likelihood - 1e-6);
  EXPECT_TRUE(f2->converged);
}

TEST(FitGmm1D, FailsOnDegenerateInputs) {
  EXPECT_FALSE(FitGmm1D({1.0}).ok());
  EXPECT_FALSE(FitGmm1D({2.0, 2.0, 2.0}).ok());
  GmmFitOptions opt;
  opt.num_components = 0;
  EXPECT_FALSE(FitGmm1D({1.0, 2.0, 3.0}, opt).ok());
}

TEST(FitGmm1D, OverlappingComponentsStillFit) {
  const auto v = Bimodal(0, 1, 300, 2.5, 1, 300, 15);
  auto fit = FitGmm1D(v);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->components[0].mean, fit->components[1].mean);
  // Means should bracket the two true means loosely.
  EXPECT_NEAR(fit->components[0].mean, 0.0, 1.5);
  EXPECT_NEAR(fit->components[1].mean, 2.5, 1.5);
}

TEST(FitGmm1D, SingleComponentReducesToMle) {
  Rng rng(17);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(5.0 + 2.0 * rng.NextGaussian());
  GmmFitOptions opt;
  opt.num_components = 1;
  auto fit = FitGmm1D(v, opt);
  ASSERT_TRUE(fit.ok());
  ASSERT_EQ(fit->components.size(), 1u);
  EXPECT_NEAR(fit->components[0].mean, 5.0, 0.3);
  EXPECT_NEAR(fit->components[0].variance, 4.0, 0.8);
  EXPECT_NEAR(fit->components[0].weight, 1.0, 1e-9);
}

}  // namespace
}  // namespace slim
