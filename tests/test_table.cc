#include "eval/table.h"

#include <gtest/gtest.h>

namespace slim {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long_name", "12345"});
  const std::string s = t.ToString();
  // Header, separator, two rows.
  size_t lines = 0;
  for (char c : s) lines += (c == '\n');
  EXPECT_EQ(lines, 4u);
  // Every line has the same on-screen width up to trailing content.
  EXPECT_NE(s.find("long_name  12345"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(TablePrinter, HeaderOnlyTable) {
  TablePrinter t({"col"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TablePrinter, DiesOnRowWidthMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only_one"}), "row width");
}

TEST(TablePrinter, DiesOnEmptyHeader) {
  EXPECT_DEATH(TablePrinter({}), "at least one column");
}

}  // namespace
}  // namespace slim
