// Differential tests for the SIMD scoring kernels (core/score_kernel.h).
//
// The kernel layer's contract is exactness, not approximation: every
// variant (scalar, SSE4.2, AVX2) and the galloping path must produce
// bit-identical outputs — integer match positions AND double contributions
// (0 ULP; the float path uses only exactly-rounded elementwise ops and a
// fixed scalar accumulation order). These tests enforce that contract
// three ways:
//
//   1. primitive-level differentials against a naive reference, over
//      adversarial span shapes (empty, length 1, disjoint, nested,
//      all-shared, sub-SIMD-width tails, extreme values);
//   2. engine-level differentials: SimilarityEngine scores on a generated
//      linkage problem must agree bitwise across every supported kernel;
//   3. seeded fuzz-style *_Stress cases (larger iteration counts in
//      Release) that print their seed on failure — rerun with
//      SLIM_KERNEL_STRESS_SEED=<seed> to replay a single failing draw.
//
// Variants the CPU cannot run are skipped, never failed, so the suite is
// portable to machines without AVX2 (and to non-x86, where only the scalar
// reference exists).
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "slim.h"

namespace slim {
namespace {

std::vector<ScoreKernel> SupportedKernels() {
  std::vector<ScoreKernel> kernels = {ScoreKernel::kScalar};
  if (ScoreKernelSupported(ScoreKernel::kSse42)) {
    kernels.push_back(ScoreKernel::kSse42);
  }
  if (ScoreKernelSupported(ScoreKernel::kAvx2)) {
    kernels.push_back(ScoreKernel::kAvx2);
  }
  return kernels;
}

// Naive quadratic reference: emit (i, j) with a[i] == b[j] in ascending i
// order. For strictly ascending inputs this equals the two-pointer merge.
template <typename T>
std::vector<std::pair<uint32_t, uint32_t>> NaiveIntersect(
    const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      if (a[i] == b[j]) {
        out.emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
      }
    }
  }
  return out;
}

template <typename T>
std::vector<std::pair<uint32_t, uint32_t>> RunIntersect(
    const ScoreKernelOps& ops, const std::vector<T>& a,
    const std::vector<T>& b) {
  const size_t cap = std::min(a.size(), b.size());
  std::vector<uint32_t> out_a(cap), out_b(cap);
  size_t n;
  if constexpr (std::is_same_v<T, int64_t>) {
    n = ops.intersect_i64(a.data(), a.size(), b.data(), b.size(), out_a.data(),
                          out_b.data());
  } else {
    n = ops.intersect_u32(a.data(), a.size(), b.data(), b.size(), out_a.data(),
                          out_b.data());
  }
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.reserve(n);
  for (size_t k = 0; k < n; ++k) pairs.emplace_back(out_a[k], out_b[k]);
  return pairs;
}

template <typename T>
std::vector<std::pair<uint32_t, uint32_t>> RunGallop(const std::vector<T>& a,
                                                     const std::vector<T>& b) {
  const size_t cap = std::min(a.size(), b.size());
  std::vector<uint32_t> out_a(cap), out_b(cap);
  size_t n;
  if constexpr (std::is_same_v<T, int64_t>) {
    n = IntersectGallopI64(a.data(), a.size(), b.data(), b.size(), out_a.data(),
                           out_b.data());
  } else {
    n = IntersectGallopU32(a.data(), a.size(), b.data(), b.size(), out_a.data(),
                           out_b.data());
  }
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.reserve(n);
  for (size_t k = 0; k < n; ++k) pairs.emplace_back(out_a[k], out_b[k]);
  return pairs;
}

// Checks every supported kernel AND the galloping path against the naive
// reference on one span pair.
template <typename T>
void ExpectAllVariantsAgree(const std::vector<T>& a, const std::vector<T>& b) {
  const auto expected = NaiveIntersect(a, b);
  for (const ScoreKernel kernel : SupportedKernels()) {
    EXPECT_EQ(RunIntersect(GetScoreKernelOps(kernel), a, b), expected)
        << "kernel " << ScoreKernelName(kernel) << " lens " << a.size() << "x"
        << b.size();
  }
  EXPECT_EQ(RunGallop(a, b), expected)
      << "gallop lens " << a.size() << "x" << b.size();
}

// Strictly ascending random span: `len` values starting near `start` with
// random gaps in [1, max_gap].
template <typename T>
std::vector<T> RandomSpan(std::mt19937_64& rng, size_t len, T start,
                          int max_gap) {
  std::uniform_int_distribution<int> gap(1, max_gap);
  std::vector<T> out;
  out.reserve(len);
  T value = start;
  for (size_t k = 0; k < len; ++k) {
    value = static_cast<T>(value + static_cast<T>(gap(rng)));
    out.push_back(value);
  }
  return out;
}

// Random subset of `base` keeping order (strictly ascending stays so).
template <typename T>
std::vector<T> RandomSubset(std::mt19937_64& rng, const std::vector<T>& base,
                            double keep) {
  std::bernoulli_distribution coin(keep);
  std::vector<T> out;
  for (const T v : base) {
    if (coin(rng)) out.push_back(v);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Adversarial fixed cases.
// ---------------------------------------------------------------------------

TEST(ScoreKernelIntersect, EmptyAndSingletonSpans) {
  using V64 = std::vector<int64_t>;
  ExpectAllVariantsAgree(V64{}, V64{});
  ExpectAllVariantsAgree(V64{}, V64{1, 2, 3, 4, 5});
  ExpectAllVariantsAgree(V64{1, 2, 3, 4, 5}, V64{});
  ExpectAllVariantsAgree(V64{3}, V64{3});
  ExpectAllVariantsAgree(V64{3}, V64{4});
  ExpectAllVariantsAgree(V64{3}, V64{1, 2, 3, 4, 5, 6, 7, 8, 9});
  ExpectAllVariantsAgree(V64{10}, V64{1, 2, 3, 4, 5, 6, 7, 8, 9});
  using V32 = std::vector<uint32_t>;
  ExpectAllVariantsAgree(V32{}, V32{});
  ExpectAllVariantsAgree(V32{7}, V32{7});
  ExpectAllVariantsAgree(V32{7}, V32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
}

TEST(ScoreKernelIntersect, DisjointAndInterleavedSpans) {
  using V64 = std::vector<int64_t>;
  // Fully disjoint ranges (one entirely below the other).
  ExpectAllVariantsAgree(V64{1, 2, 3, 4, 5, 6, 7, 8},
                         V64{100, 101, 102, 103, 104, 105, 106, 107});
  // Interleaved, no matches (evens vs odds).
  V64 evens, odds;
  for (int64_t k = 0; k < 40; ++k) {
    evens.push_back(2 * k);
    odds.push_back(2 * k + 1);
  }
  ExpectAllVariantsAgree(evens, odds);
  // Nested: b entirely inside a's range, partial matches.
  V64 outer, inner;
  for (int64_t k = 0; k < 64; ++k) outer.push_back(k * 3);
  for (int64_t k = 20; k < 40; ++k) inner.push_back(k);  // hits multiples of 3
  ExpectAllVariantsAgree(outer, inner);
  ExpectAllVariantsAgree(inner, outer);
}

TEST(ScoreKernelIntersect, AllSharedSpans) {
  for (const size_t len : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u,
                           31u, 32u, 33u, 100u}) {
    std::vector<int64_t> a64;
    std::vector<uint32_t> a32;
    for (size_t k = 0; k < len; ++k) {
      a64.push_back(static_cast<int64_t>(k * k + 1));
      a32.push_back(static_cast<uint32_t>(k * 7 + 3));
    }
    ExpectAllVariantsAgree(a64, a64);  // idempotence: (k, k) for all k
    ExpectAllVariantsAgree(a32, a32);
  }
}

TEST(ScoreKernelIntersect, TailRemaindersBelowSimdWidth) {
  // Every length pair below / around the widest SIMD block (8 u32 lanes),
  // dense values so matches are frequent and land in the scalar tails.
  std::mt19937_64 rng(1234);
  for (size_t la = 0; la <= 17; ++la) {
    for (size_t lb = 0; lb <= 17; ++lb) {
      const auto a64 = RandomSpan<int64_t>(rng, la, 0, 3);
      const auto b64 = RandomSpan<int64_t>(rng, lb, 0, 3);
      ExpectAllVariantsAgree(a64, b64);
      const auto a32 = RandomSpan<uint32_t>(rng, la, 0u, 3);
      const auto b32 = RandomSpan<uint32_t>(rng, lb, 0u, 3);
      ExpectAllVariantsAgree(a32, b32);
    }
  }
}

TEST(ScoreKernelIntersect, ExtremeValues) {
  const int64_t i64max = std::numeric_limits<int64_t>::max();
  const int64_t i64min = std::numeric_limits<int64_t>::min();
  ExpectAllVariantsAgree<int64_t>(
      {i64min, i64min + 1, -5, 0, 7, i64max - 1, i64max},
      {i64min, -5, 1, 7, i64max});
  const uint32_t u32max = std::numeric_limits<uint32_t>::max();
  ExpectAllVariantsAgree<uint32_t>(
      {0, 1, 2, u32max - 2, u32max - 1, u32max},
      {0, 2, 3, u32max - 1, u32max});
}

TEST(ScoreKernelIntersect, SymmetryMirrorsMatches) {
  std::mt19937_64 rng(99);
  const auto base = RandomSpan<int64_t>(rng, 120, 1000, 4);
  const auto a = RandomSubset(rng, base, 0.7);
  const auto b = RandomSubset(rng, base, 0.5);
  const auto ab = NaiveIntersect(a, b);
  for (const ScoreKernel kernel : SupportedKernels()) {
    const auto& ops = GetScoreKernelOps(kernel);
    auto forward = RunIntersect(ops, a, b);
    auto backward = RunIntersect(ops, b, a);
    for (auto& [x, y] : backward) std::swap(x, y);
    EXPECT_EQ(forward, ab) << ScoreKernelName(kernel);
    EXPECT_EQ(backward, ab) << ScoreKernelName(kernel);
  }
}

TEST(ScoreKernelIntersect, GallopHeuristicDispatchIsOutputInvariant) {
  // Skewed lengths trigger galloping inside IntersectSorted*; the output
  // must be what the linear merge produces, for every kernel.
  std::mt19937_64 rng(7);
  const auto large = RandomSpan<int64_t>(rng, 2000, 0, 3);
  const auto small = RandomSubset(rng, large, 0.01);  // far beyond the ratio
  ASSERT_GT(large.size(), small.size() * kGallopSpanRatio);
  const auto expected = NaiveIntersect(small, large);
  for (const ScoreKernel kernel : SupportedKernels()) {
    const auto& ops = GetScoreKernelOps(kernel);
    const size_t cap = std::min(small.size(), large.size());
    std::vector<uint32_t> out_a(cap), out_b(cap);
    const size_t n =
        IntersectSortedI64(ops, small.data(), small.size(), large.data(),
                           large.size(), out_a.data(), out_b.data());
    std::vector<std::pair<uint32_t, uint32_t>> got;
    for (size_t k = 0; k < n; ++k) got.emplace_back(out_a[k], out_b[k]);
    EXPECT_EQ(got, expected) << ScoreKernelName(kernel);
  }
}

// ---------------------------------------------------------------------------
// IDF contribution batches: exact double agreement (0 ULP).
// ---------------------------------------------------------------------------

TEST(ScoreKernelIdf, ContributionsAreBitIdenticalAcrossKernels) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> idf_dist(0.0, 12.0);
  std::uniform_int_distribution<uint32_t> bin_dist(0, 499);
  std::vector<double> idf_a(500), idf_b(500);
  for (size_t k = 0; k < 500; ++k) {
    idf_a[k] = idf_dist(rng);
    idf_b[k] = idf_dist(rng);
  }
  for (const size_t len : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 63u, 64u,
                           65u, 300u}) {
    std::vector<uint32_t> bins_a(len), bins_b(len);
    for (size_t k = 0; k < len; ++k) {
      bins_a[k] = bin_dist(rng);
      bins_b[k] = bin_dist(rng);
    }
    const double norm = 1.3758213;
    std::vector<double> expected(len, -1.0);
    GetScoreKernelOps(ScoreKernel::kScalar)
        .idf_contributions(bins_a.data(), bins_b.data(), len, idf_a.data(),
                           idf_b.data(), norm, expected.data());
    for (size_t k = 0; k < len; ++k) {
      ASSERT_EQ(expected[k],
                std::min(idf_a[bins_a[k]], idf_b[bins_b[k]]) / norm);
    }
    for (const ScoreKernel kernel : SupportedKernels()) {
      std::vector<double> got(len, -2.0);
      GetScoreKernelOps(kernel).idf_contributions(
          bins_a.data(), bins_b.data(), len, idf_a.data(), idf_b.data(), norm,
          got.data());
      // EXPECT_EQ on doubles: exact equality, not a tolerance — the kernel
      // contract is 0 ULP.
      EXPECT_EQ(got, expected) << ScoreKernelName(kernel) << " len " << len;
    }
  }
}

// ---------------------------------------------------------------------------
// Quantized counts.
// ---------------------------------------------------------------------------

TEST(ScoreKernelQuantize, SaturatesAtU16Boundary) {
  EXPECT_EQ(QuantizeCountSaturating(0), 0);
  EXPECT_EQ(QuantizeCountSaturating(1), 1);
  EXPECT_EQ(QuantizeCountSaturating(65534), 65534);
  EXPECT_EQ(QuantizeCountSaturating(65535), 65535);
  EXPECT_EQ(QuantizeCountSaturating(65536), 65535);  // guard: clamp, no wrap
  EXPECT_EQ(QuantizeCountSaturating(1u << 31), 65535);
  EXPECT_EQ(QuantizeCountSaturating(std::numeric_limits<uint32_t>::max()),
            65535);

  const std::vector<uint32_t> counts = {0, 5, 65535, 65536, 4000000000u};
  std::vector<uint16_t> q(counts.size());
  QuantizeCountsSaturating(counts, q.data());
  EXPECT_EQ(q, (std::vector<uint16_t>{0, 5, 65535, 65535, 65535}));
}

TEST(ScoreKernelQuantize, OverlapSumsMinCountsOverSharedBins) {
  const std::vector<uint32_t> bins_a = {2, 5, 9, 14};
  const std::vector<uint16_t> counts_a = {3, 10, 1, 65535};
  const std::vector<uint32_t> bins_b = {1, 5, 9, 14, 20};
  const std::vector<uint16_t> counts_b = {8, 4, 7, 65535, 2};
  // Shared: bin 5 (min 4), bin 9 (min 1), bin 14 (min 65535 — saturated on
  // both sides stays exact in the u64 sum).
  std::vector<uint32_t> scratch_a, scratch_b;
  for (const ScoreKernel kernel : SupportedKernels()) {
    EXPECT_EQ(QuantizedOverlap(GetScoreKernelOps(kernel), bins_a, counts_a,
                               bins_b, counts_b, &scratch_a, &scratch_b),
              4u + 1u + 65535u)
        << ScoreKernelName(kernel);
  }
  // No shared bins -> 0; empty side -> 0.
  for (const ScoreKernel kernel : SupportedKernels()) {
    const auto& ops = GetScoreKernelOps(kernel);
    EXPECT_EQ(QuantizedOverlap(ops, bins_a, counts_a, {}, {}, &scratch_a,
                               &scratch_b),
              0u);
    EXPECT_EQ(QuantizedOverlap(ops, std::vector<uint32_t>{1},
                               std::vector<uint16_t>{9},
                               std::vector<uint32_t>{2},
                               std::vector<uint16_t>{9}, &scratch_a,
                               &scratch_b),
              0u);
  }
}

// ---------------------------------------------------------------------------
// Kernel selection: names, parsing, CPU dispatch, SLIM_KERNEL override.
// ---------------------------------------------------------------------------

TEST(ScoreKernelSelect, NamesRoundTrip) {
  for (const ScoreKernel k : {ScoreKernel::kAuto, ScoreKernel::kScalar,
                              ScoreKernel::kSse42, ScoreKernel::kAvx2}) {
    const auto parsed = ParseScoreKernel(ScoreKernelName(k));
    ASSERT_TRUE(parsed.has_value()) << ScoreKernelName(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(ParseScoreKernel("").has_value());
  EXPECT_FALSE(ParseScoreKernel("avx512").has_value());
  EXPECT_FALSE(ParseScoreKernel("Scalar").has_value());
}

TEST(ScoreKernelSelect, ScalarIsAlwaysSupportedAndResolvable) {
  EXPECT_TRUE(ScoreKernelSupported(ScoreKernel::kScalar));
  EXPECT_TRUE(ScoreKernelSupported(ScoreKernel::kAuto));
  EXPECT_EQ(ResolveScoreKernel(ScoreKernel::kScalar), ScoreKernel::kScalar);
  // Explicit requests win over any environment setting.
  const ScoreKernel resolved = ResolveScoreKernel(ScoreKernel::kAuto);
  EXPECT_NE(resolved, ScoreKernel::kAuto);
  EXPECT_TRUE(ScoreKernelSupported(resolved));
  // Auto never picks a slower tier than the CPU offers.
  if (ScoreKernelSupported(ScoreKernel::kAvx2)) {
    EXPECT_EQ(resolved, ScoreKernel::kAvx2);
  } else if (ScoreKernelSupported(ScoreKernel::kSse42)) {
    EXPECT_EQ(resolved, ScoreKernel::kSse42);
  } else {
    EXPECT_EQ(resolved, ScoreKernel::kScalar);
  }
}

TEST(ScoreKernelSelect, EnvOverrideForcesAutoChoice) {
  // Guard + restore: other tests in this binary read SLIM_KERNEL too.
  const char* prev = std::getenv("SLIM_KERNEL");
  const std::string saved = prev != nullptr ? prev : "";
  ASSERT_EQ(setenv("SLIM_KERNEL", "scalar", 1), 0);
  EXPECT_EQ(ResolveScoreKernel(ScoreKernel::kAuto), ScoreKernel::kScalar);
  // An explicit kernel ignores the environment.
  if (ScoreKernelSupported(ScoreKernel::kSse42)) {
    EXPECT_EQ(ResolveScoreKernel(ScoreKernel::kSse42), ScoreKernel::kSse42);
  }
  ASSERT_EQ(setenv("SLIM_KERNEL", "auto", 1), 0);
  EXPECT_NE(ResolveScoreKernel(ScoreKernel::kAuto), ScoreKernel::kAuto);
  if (prev != nullptr) {
    setenv("SLIM_KERNEL", saved.c_str(), 1);
  } else {
    unsetenv("SLIM_KERNEL");
  }
}

// ---------------------------------------------------------------------------
// Engine-level differential: SimilarityEngine must score bit-identically on
// every kernel, with and without the reusable scratch, on a real generated
// linkage problem.
// ---------------------------------------------------------------------------

const LinkageContext& EngineContext() {
  static const LinkageContext* ctx = [] {
    CheckinGeneratorOptions gen;
    gen.num_users = 260;
    gen.seed = 4242;
    const LocationDataset master = GenerateCheckinDataset(gen);
    PairSampleOptions sampling;
    sampling.entities_per_side = 120;
    sampling.intersection_ratio = 0.5;
    sampling.inclusion_probability = 0.5;
    sampling.seed = 4243;
    auto sample = SampleLinkedPair(master, sampling);
    SLIM_CHECK_MSG(sample.ok(), "sampling the kernel test problem failed");
    return new LinkageContext(LinkageContext::Build(
        sample->a, sample->b, HistoryConfig{}, /*threads=*/1));
  }();
  return *ctx;
}

TEST(ScoreKernelEngine, ScoresAreBitIdenticalAcrossKernelsAndScratch) {
  const LinkageContext& ctx = EngineContext();
  SimilarityConfig reference_config;
  reference_config.kernel = ScoreKernel::kScalar;
  const SimilarityEngine reference(ctx, reference_config);
  ASSERT_EQ(reference.kernel(), ScoreKernel::kScalar);

  // Scalar reference scores + stats over every cross pair.
  SimilarityStats ref_stats;
  std::vector<double> ref_scores;
  ref_scores.reserve(ctx.store_e.size() * ctx.store_i.size());
  for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
    for (EntityIdx v = 0; v < ctx.store_i.size(); ++v) {
      ref_scores.push_back(reference.ScoreIndexed(u, v, &ref_stats));
    }
  }
  ASSERT_GT(ref_stats.record_comparisons, 0u);

  for (const ScoreKernel kernel : SupportedKernels()) {
    SimilarityConfig config;
    config.kernel = kernel;
    const SimilarityEngine engine(ctx, config);
    EXPECT_EQ(engine.kernel(), kernel);
    SimilarityStats stats;
    ScoreScratch scratch;
    size_t pos = 0;
    for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
      for (EntityIdx v = 0; v < ctx.store_i.size(); ++v) {
        // Alternate between the shared scratch and the call-local fallback:
        // both must be exact.
        const double score =
            (u + v) % 2 == 0
                ? engine.ScoreIndexed(u, v, &stats, nullptr, &scratch)
                : engine.ScoreIndexed(u, v, &stats);
        ASSERT_EQ(score, ref_scores[pos])
            << ScoreKernelName(kernel) << " pair (" << u << ", " << v << ")";
        ++pos;
      }
    }
    // Instrumentation must not drift between kernels either.
    EXPECT_EQ(stats.record_comparisons, ref_stats.record_comparisons);
    EXPECT_EQ(stats.alibi_pairs, ref_stats.alibi_pairs);
    EXPECT_EQ(stats.entity_pairs, ref_stats.entity_pairs);
  }
}

TEST(ScoreKernelEngine, AblationConfigsAgreeAcrossKernels) {
  const LinkageContext& ctx = EngineContext();
  // The ablation toggles exercise the batched-IDF-off path, the all-pairs
  // pairing, and the normalisation-off divisor.
  std::vector<SimilarityConfig> configs(4);
  configs[1].use_idf = false;
  configs[2].pairing = PairingKind::kAllPairs;
  configs[3].use_normalization = false;
  configs[3].use_mfn = false;
  for (size_t c = 0; c < configs.size(); ++c) {
    configs[c].kernel = ScoreKernel::kScalar;
    const SimilarityEngine reference(ctx, configs[c]);
    for (const ScoreKernel kernel : SupportedKernels()) {
      SimilarityConfig config = configs[c];
      config.kernel = kernel;
      const SimilarityEngine engine(ctx, config);
      SimilarityStats ref_stats, stats;
      ScoreScratch scratch;
      for (EntityIdx u = 0; u < ctx.store_e.size(); u += 7) {
        for (EntityIdx v = 0; v < ctx.store_i.size(); v += 3) {
          ASSERT_EQ(engine.ScoreIndexed(u, v, &stats, nullptr, &scratch),
                    reference.ScoreIndexed(u, v, &ref_stats))
              << ScoreKernelName(kernel) << " config " << c << " pair (" << u
              << ", " << v << ")";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded fuzz-style stress. Larger draws in Release; the Debug (sanitizer)
// legs run a reduced count of the same cases. Every iteration derives its
// own seed and reports it via SCOPED_TRACE on failure; set
// SLIM_KERNEL_STRESS_SEED to replay exactly one draw.
// ---------------------------------------------------------------------------

#ifdef NDEBUG
constexpr int kStressIterations = 500;
#else
constexpr int kStressIterations = 60;
#endif

std::vector<uint64_t> StressSeeds(uint64_t base) {
  if (const char* env = std::getenv("SLIM_KERNEL_STRESS_SEED");
      env != nullptr && env[0] != '\0') {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 10))};
  }
  std::vector<uint64_t> seeds;
  std::mt19937_64 rng(base);
  for (int k = 0; k < kStressIterations; ++k) seeds.push_back(rng());
  return seeds;
}

TEST(ScoreKernelIntersect, RandomSpans_Stress) {
  for (const uint64_t seed : StressSeeds(0x511351aab5ULL)) {
    SCOPED_TRACE("SLIM_KERNEL_STRESS_SEED=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<size_t> len_dist(0, 300);
    std::uniform_int_distribution<int> gap_dist(1, 6);
    std::uniform_int_distribution<int64_t> start_dist(-1000, 1000);
    // Correlated spans: subsets of one base sequence (high overlap), plus
    // an independent tail (misses), lengths crossing every SIMD width.
    const auto base = RandomSpan<int64_t>(rng, 400, start_dist(rng),
                                          gap_dist(rng));
    auto a = RandomSubset(rng, base, 0.6);
    auto b = RandomSubset(rng, base, 0.4);
    a.resize(std::min(a.size(), len_dist(rng)));
    b.resize(std::min(b.size(), len_dist(rng)));
    ExpectAllVariantsAgree(a, b);
    // Independent u32 spans with occasional accidental overlap.
    const auto ua = RandomSpan<uint32_t>(rng, len_dist(rng), 0u, 4);
    const auto ub = RandomSpan<uint32_t>(rng, len_dist(rng), 2u, 4);
    ExpectAllVariantsAgree(ua, ub);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(ScoreKernelIdf, RandomContributions_Stress) {
  for (const uint64_t seed : StressSeeds(0xc0ffee)) {
    SCOPED_TRACE("SLIM_KERNEL_STRESS_SEED=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<size_t> len_dist(0, 200);
    std::uniform_real_distribution<double> idf_dist(0.0, 20.0);
    std::uniform_real_distribution<double> norm_dist(0.25, 4.0);
    const size_t vocab = 256;
    std::vector<double> idf_a(vocab), idf_b(vocab);
    for (size_t k = 0; k < vocab; ++k) {
      idf_a[k] = idf_dist(rng);
      idf_b[k] = idf_dist(rng);
    }
    const size_t len = len_dist(rng);
    std::uniform_int_distribution<uint32_t> bin_dist(0, vocab - 1);
    std::vector<uint32_t> bins_a(len), bins_b(len);
    for (size_t k = 0; k < len; ++k) {
      bins_a[k] = bin_dist(rng);
      bins_b[k] = bin_dist(rng);
    }
    const double norm = norm_dist(rng);
    std::vector<double> expected(len);
    GetScoreKernelOps(ScoreKernel::kScalar)
        .idf_contributions(bins_a.data(), bins_b.data(), len, idf_a.data(),
                           idf_b.data(), norm, expected.data());
    for (const ScoreKernel kernel : SupportedKernels()) {
      std::vector<double> got(len);
      GetScoreKernelOps(kernel).idf_contributions(
          bins_a.data(), bins_b.data(), len, idf_a.data(), idf_b.data(), norm,
          got.data());
      ASSERT_EQ(got, expected) << ScoreKernelName(kernel);
    }
    if (::testing::Test::HasFailure()) break;
  }
}

}  // namespace
}  // namespace slim
