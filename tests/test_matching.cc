#include "match/matcher.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace slim {
namespace {

TEST(GreedyMatching, EmptyGraph) {
  const Matching m = GreedyMaxWeightMatching(BipartiteGraph{});
  EXPECT_TRUE(m.pairs.empty());
  EXPECT_DOUBLE_EQ(m.total_weight, 0.0);
}

TEST(GreedyMatching, PicksHeaviestFirst) {
  BipartiteGraph g;
  g.AddEdge(1, 10, 5.0);
  g.AddEdge(1, 11, 9.0);
  g.AddEdge(2, 10, 8.0);
  const Matching m = GreedyMaxWeightMatching(g);
  ASSERT_EQ(m.pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(m.total_weight, 17.0);
  EXPECT_TRUE(m.IsValidMatching());
}

TEST(GreedyMatching, OneToOneConstraintHolds) {
  BipartiteGraph g;
  // Entity 1 is attractive to everyone; only one may have it.
  g.AddEdge(1, 10, 3.0);
  g.AddEdge(2, 10, 2.0);
  g.AddEdge(3, 10, 1.0);
  const Matching m = GreedyMaxWeightMatching(g);
  ASSERT_EQ(m.pairs.size(), 1u);
  EXPECT_EQ(m.pairs[0].u, 1);
}

TEST(GreedyMatching, DeterministicTieBreak) {
  BipartiteGraph g;
  g.AddEdge(2, 20, 1.0);
  g.AddEdge(1, 20, 1.0);
  g.AddEdge(1, 21, 1.0);
  const Matching m1 = GreedyMaxWeightMatching(g);
  const Matching m2 = GreedyMaxWeightMatching(g);
  EXPECT_EQ(m1.pairs.size(), m2.pairs.size());
  for (size_t i = 0; i < m1.pairs.size(); ++i) {
    EXPECT_EQ(m1.pairs[i], m2.pairs[i]);
  }
  // Ties break toward smaller (u, v): edge (1,20) first.
  EXPECT_EQ(m1.pairs[0].u, 1);
  EXPECT_EQ(m1.pairs[0].v, 20);
}

TEST(GreedyMatching, KnownSuboptimalCase) {
  // Greedy takes (1,10,10) and strands vertex 2; optimal pairs (1,11)+(2,10)
  // for 9+8=17.
  BipartiteGraph g;
  g.AddEdge(1, 10, 10.0);
  g.AddEdge(1, 11, 9.0);
  g.AddEdge(2, 10, 8.0);
  const Matching greedy = GreedyMaxWeightMatching(g);
  const Matching exact = HungarianMaxWeightMatching(g);
  EXPECT_DOUBLE_EQ(greedy.total_weight, 10.0);
  EXPECT_DOUBLE_EQ(exact.total_weight, 17.0);
}

TEST(HungarianMatching, EmptyGraph) {
  const Matching m = HungarianMaxWeightMatching(BipartiteGraph{});
  EXPECT_TRUE(m.pairs.empty());
}

TEST(HungarianMatching, SingleEdge) {
  BipartiteGraph g;
  g.AddEdge(5, 7, 3.5);
  const Matching m = HungarianMaxWeightMatching(g);
  ASSERT_EQ(m.pairs.size(), 1u);
  EXPECT_EQ(m.pairs[0], (WeightedEdge{5, 7, 3.5}));
}

TEST(HungarianMatching, RectangularMoreLeftThanRight) {
  BipartiteGraph g;
  g.AddEdge(1, 100, 4.0);
  g.AddEdge(2, 100, 6.0);
  g.AddEdge(3, 100, 5.0);
  const Matching m = HungarianMaxWeightMatching(g);
  ASSERT_EQ(m.pairs.size(), 1u);
  EXPECT_EQ(m.pairs[0].u, 2);
}

// Exhaustive optimal matching for tiny instances, for cross-checking.
double BruteForceBest(const std::vector<WeightedEdge>& edges, size_t idx,
                      std::vector<EntityId>* used_u,
                      std::vector<EntityId>* used_v) {
  if (idx == edges.size()) return 0.0;
  // Skip edge idx.
  double best = BruteForceBest(edges, idx + 1, used_u, used_v);
  const auto& e = edges[idx];
  const bool u_free =
      std::find(used_u->begin(), used_u->end(), e.u) == used_u->end();
  const bool v_free =
      std::find(used_v->begin(), used_v->end(), e.v) == used_v->end();
  if (u_free && v_free) {
    used_u->push_back(e.u);
    used_v->push_back(e.v);
    best = std::max(best,
                    e.weight + BruteForceBest(edges, idx + 1, used_u, used_v));
    used_u->pop_back();
    used_v->pop_back();
  }
  return best;
}

class MatchingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingProperty, HungarianMatchesBruteForceAndBeatsGreedy) {
  Rng rng(GetParam());
  BipartiteGraph g;
  const int nl = 1 + static_cast<int>(rng.NextUint64(5));
  const int nr = 1 + static_cast<int>(rng.NextUint64(5));
  for (int u = 0; u < nl; ++u) {
    for (int v = 0; v < nr; ++v) {
      if (rng.NextBernoulli(0.7)) {
        g.AddEdge(u, 100 + v, rng.NextDouble(0.1, 10.0));
      }
    }
  }
  const Matching greedy = GreedyMaxWeightMatching(g);
  const Matching exact = HungarianMaxWeightMatching(g);
  EXPECT_TRUE(greedy.IsValidMatching());
  EXPECT_TRUE(exact.IsValidMatching());

  std::vector<EntityId> uu, vv;
  const double best = BruteForceBest(g.edges(), 0, &uu, &vv);
  EXPECT_NEAR(exact.total_weight, best, 1e-9);
  EXPECT_LE(greedy.total_weight, exact.total_weight + 1e-9);
  // Greedy is a 1/2-approximation of the optimum.
  EXPECT_GE(greedy.total_weight, 0.5 * exact.total_weight - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingProperty,
                         ::testing::Range<uint64_t>(1, 21));

TEST(BipartiteGraph, VertexCounts) {
  BipartiteGraph g;
  g.AddEdge(1, 10, 1.0);
  g.AddEdge(1, 11, 1.0);
  g.AddEdge(2, 10, 1.0);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_left_vertices(), 2u);
  EXPECT_EQ(g.num_right_vertices(), 2u);
}

TEST(Matching, IsValidMatchingDetectsDuplicates) {
  Matching m;
  m.pairs = {{1, 10, 1.0}, {1, 11, 1.0}};
  EXPECT_FALSE(m.IsValidMatching());
  m.pairs = {{1, 10, 1.0}, {2, 10, 1.0}};
  EXPECT_FALSE(m.IsValidMatching());
  m.pairs = {{1, 10, 1.0}, {2, 11, 1.0}};
  EXPECT_TRUE(m.IsValidMatching());
}

}  // namespace
}  // namespace slim
