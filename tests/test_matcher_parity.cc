// Greedy-vs-Hungarian matcher parity on small random instances: the exact
// solver's total weight must bound the heuristic's from above, both must
// produce valid one-to-one matchings, and on instances whose weights make
// the optimum unambiguous the two must select identical links.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "match/bipartite.h"
#include "match/matcher.h"

namespace slim {
namespace {

BipartiteGraph RandomGraph(Rng* rng, size_t lefts, size_t rights,
                           double edge_probability) {
  std::vector<WeightedEdge> edges;
  for (size_t u = 0; u < lefts; ++u) {
    for (size_t v = 0; v < rights; ++v) {
      if (!rng->NextBernoulli(edge_probability)) continue;
      // Strictly positive, effectively tie-free weights.
      edges.push_back({static_cast<EntityId>(u), static_cast<EntityId>(v),
                       rng->NextDouble(0.01, 10.0)});
    }
  }
  return BipartiteGraph(std::move(edges));
}

std::vector<std::pair<EntityId, EntityId>> PairSet(const Matching& m) {
  std::vector<std::pair<EntityId, EntityId>> pairs;
  pairs.reserve(m.pairs.size());
  for (const auto& e : m.pairs) pairs.emplace_back(e.u, e.v);
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(MatcherParity, HungarianNeverScoresBelowGreedy) {
  Rng rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t lefts = 1 + rng.NextUint64(8);
    const size_t rights = 1 + rng.NextUint64(8);
    const BipartiteGraph graph =
        RandomGraph(&rng, lefts, rights, rng.NextDouble(0.2, 0.9));
    const Matching greedy = GreedyMaxWeightMatching(graph);
    const Matching exact = HungarianMaxWeightMatching(graph);
    EXPECT_TRUE(greedy.IsValidMatching()) << "trial " << trial;
    EXPECT_TRUE(exact.IsValidMatching()) << "trial " << trial;
    EXPECT_GE(exact.total_weight, greedy.total_weight - 1e-9)
        << "trial " << trial << ": the exact optimum must bound the greedy "
        << "heuristic";
    // Both totals must equal the sum of their own pairs.
    for (const Matching* m : {&greedy, &exact}) {
      double sum = 0.0;
      for (const auto& e : m->pairs) sum += e.weight;
      EXPECT_NEAR(m->total_weight, sum, 1e-9);
    }
  }
}

TEST(MatcherParity, IdenticalLinksWhenWeightsAreUnambiguous) {
  // Diagonally dominant instances: every u's heaviest edge is (u, u) and
  // the diagonals strictly dominate all off-diagonal weights, so the unique
  // optimum is the diagonal and the greedy heuristic must find exactly it.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.NextUint64(7);
    std::vector<WeightedEdge> edges;
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = 0; v < n; ++v) {
        const double w = u == v ? rng.NextDouble(10.0, 20.0)
                                : rng.NextDouble(0.01, 1.0);
        edges.push_back(
            {static_cast<EntityId>(u), static_cast<EntityId>(v), w});
      }
    }
    const BipartiteGraph graph{std::move(edges)};
    const Matching greedy = GreedyMaxWeightMatching(graph);
    const Matching exact = HungarianMaxWeightMatching(graph);
    ASSERT_EQ(greedy.pairs.size(), n) << "trial " << trial;
    EXPECT_EQ(PairSet(greedy), PairSet(exact)) << "trial " << trial;
    EXPECT_NEAR(greedy.total_weight, exact.total_weight, 1e-9);
    for (const auto& [u, v] : PairSet(greedy)) EXPECT_EQ(u, v);
  }
}

TEST(MatcherParity, GreedySuboptimalityIsBoundedByHalf) {
  // The greedy heuristic is a 1/2-approximation for maximum weight
  // matching; verify the bound holds on adversarial-ish random instances.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const BipartiteGraph graph = RandomGraph(&rng, 6, 6, 0.8);
    const Matching greedy = GreedyMaxWeightMatching(graph);
    const Matching exact = HungarianMaxWeightMatching(graph);
    if (exact.total_weight == 0.0) continue;
    EXPECT_GE(greedy.total_weight, 0.5 * exact.total_weight - 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace slim
