// Unit tests of the slim-serve-v1 line protocol: the parser, the
// transport-free LinkageService executor, and every error path the spec
// names (malformed command, oversized line, commands after SHUTDOWN).
#include "serve/protocol.h"

#include <string>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "serve/service.h"

namespace slim {
namespace {

SlimConfig ServeTestConfig() {
  SlimConfig c;
  c.candidates = CandidateKind::kBruteForce;
  c.threads = 2;
  return c;
}

// Two tiny overlapping trajectories: entity 1 on side A and entity 9 on
// side B visit the same cells at the same times, so one LINK epoch
// produces exactly the (1, 9) link. The decoy entities 2 and 8 sit
// degrees apart (far outside one level-12 cell) so every pair involving
// them scores zero — and a second side is needed at all because with one
// entity per side every IDF is log(1/1) = 0. (Distinct entities also
// keep the decoys' coordinates; entity 8 gets co-located with entity 2
// only in the delta-epoch test below.)
const char* kIngestA =
    "INGEST A 1 37.7749 -122.4194 600 1 37.7755 -122.4180 1500 "
    "1 37.7760 -122.4170 2400 1 37.7765 -122.4160 3300 "
    "2 36.0000 -120.0000 20600 2 36.0100 -120.0100 21500";
const char* kIngestB =
    "INGEST B 9 37.7749 -122.4194 620 9 37.7755 -122.4180 1520 "
    "9 37.7760 -122.4170 2420 9 37.7765 -122.4160 3320 "
    "8 39.0000 -124.5000 600 8 39.0100 -124.5100 1500";

TEST(ServeProtocol, ParsesIngest) {
  auto cmd = ParseServeCommand("INGEST A 7 37.5 -122.4 1234");
  ASSERT_TRUE(cmd.ok()) << cmd.status().ToString();
  EXPECT_EQ(cmd->kind, ServeCommandKind::kIngest);
  EXPECT_EQ(cmd->side, LinkageSide::kE);
  ASSERT_EQ(cmd->records.size(), 1u);
  EXPECT_EQ(cmd->records[0].entity, 7);
  EXPECT_EQ(cmd->records[0].location.lat_deg, 37.5);
  EXPECT_EQ(cmd->records[0].location.lng_deg, -122.4);
  EXPECT_EQ(cmd->records[0].timestamp, 1234);
}

TEST(ServeProtocol, ParsesTopKWithDefaultK) {
  auto cmd = ParseServeCommand("TOPK 42");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->kind, ServeCommandKind::kTopK);
  EXPECT_EQ(cmd->entity, 42);
  EXPECT_EQ(cmd->k, 5u);
  auto cmd2 = ParseServeCommand("TOPK 42 3");
  ASSERT_TRUE(cmd2.ok());
  EXPECT_EQ(cmd2->k, 3u);
}

TEST(ServeProtocol, RejectsMalformedCommands) {
  // Every rejection carries the wire error code as the first word.
  const struct {
    const char* line;
    const char* code;
  } kCases[] = {
      {"", "bad-command"},
      {"   ", "bad-command"},
      {"FROBNICATE", "bad-command"},
      {"ingest A 1 37.5 -122.4 60", "bad-command"},  // case-sensitive
      {"INGEST C 1 37.5 -122.4 60", "bad-argument"},
      {"INGEST A", "bad-argument"},
      {"INGEST A 1 37.5 -122.4", "bad-argument"},      // truncated group
      {"INGEST A 1 x -122.4 60", "bad-argument"},      // non-numeric
      {"INGEST A 1 91.0 -122.4 60", "bad-argument"},   // lat out of range
      {"INGEST A 1 37.5 -222.4 60", "bad-argument"},   // lng out of range
      {"LINK now", "bad-argument"},
      {"TOPK", "bad-argument"},
      {"TOPK notanumber", "bad-argument"},
      {"TOPK 1 0", "bad-argument"},
      {"SAVE", "bad-argument"},
      {"SHUTDOWN please", "bad-argument"},
  };
  for (const auto& c : kCases) {
    auto cmd = ParseServeCommand(c.line);
    ASSERT_FALSE(cmd.ok()) << c.line;
    EXPECT_EQ(cmd.status().message().substr(0, std::string(c.code).size()),
              c.code)
        << c.line << " -> " << cmd.status().message();
  }
}

TEST(ServeProtocol, RejectsOversizedLine) {
  const std::string line = "TOPK " + std::string(kMaxProtocolLineBytes, '1');
  auto cmd = ParseServeCommand(line);
  ASSERT_FALSE(cmd.ok());
  EXPECT_EQ(cmd.status().message().substr(0, 8), "too-long");
}

TEST(ServeService, HandshakeNamesProtocolAndBuild) {
  LinkageService service(ServeTestConfig());
  const std::string hello = service.HelloLine();
  EXPECT_EQ(hello.rfind("HELLO slim-serve-v1 build=", 0), 0u) << hello;
  EXPECT_NE(hello.find("candidates=brute"), std::string::npos) << hello;
}

TEST(ServeService, IngestLinkTopkFlow) {
  LinkageService service(ServeTestConfig());
  ServeReply r = service.Execute(kIngestA);
  EXPECT_EQ(r.line.rfind("OK ingested=6 ", 0), 0u) << r.line;
  r = service.Execute(kIngestB);
  EXPECT_EQ(r.line.rfind("OK ingested=6 ", 0), 0u) << r.line;

  r = service.Execute("LINK");
  EXPECT_EQ(r.line.rfind("OK epoch=1 ", 0), 0u) << r.line;
  EXPECT_NE(r.line.find(" links=1 "), std::string::npos) << r.line;
  // The event feed seals the epoch even with no subscribers connected.
  ASSERT_FALSE(r.events.empty());
  EXPECT_NE(r.events.back().find("sealed links=1"), std::string::npos);

  r = service.Execute("TOPK 1");
  EXPECT_EQ(r.line.rfind("OK matches=1 9:", 0), 0u) << r.line;
  r = service.Execute("TOPK 999");
  EXPECT_EQ(r.line, "OK matches=0");

  r = service.Execute("STATS");
  EXPECT_EQ(r.line.rfind("OK epoch=1 entities_a=2 entities_b=2 ", 0), 0u)
      << r.line;
  EXPECT_NE(r.line.find(" links=1"), std::string::npos) << r.line;
}

TEST(ServeService, SecondEpochEmitsDeltaEvents) {
  LinkageService service(ServeTestConfig());
  service.Execute(kIngestA);
  service.Execute(kIngestB);
  ServeReply first = service.Execute("LINK");
  ASSERT_EQ(first.line.rfind("OK epoch=1 ", 0), 0u);

  // Entity 2's doppelganger arrives on side B: a second link appears.
  // Hours after entity 8's decoy records — close enough in time to share
  // entity 2's windows, far enough that no max-speed alibi fires against
  // the decoy position 500 km away.
  service.Execute(
      "INGEST B 8 36.0000 -120.0000 20620 8 36.0100 -120.0100 21520");
  ServeReply second = service.Execute("LINK");
  EXPECT_EQ(second.line.rfind("OK epoch=2 ", 0), 0u) << second.line;
  bool saw_addition = false;
  for (const std::string& event : second.events) {
    if (event.rfind("EVENT epoch=2 link + 2 8 ", 0) == 0) saw_addition = true;
  }
  EXPECT_TRUE(saw_addition);
}

TEST(ServeService, MalformedAndOversizedExecuteAsErrors) {
  LinkageService service(ServeTestConfig());
  ServeReply r = service.Execute("FROBNICATE");
  EXPECT_EQ(r.line.rfind("ERR bad-command ", 0), 0u) << r.line;
  r = service.Execute("INGEST A 1 91.0 -122.4 60");
  EXPECT_EQ(r.line.rfind("ERR bad-argument ", 0), 0u) << r.line;
  r = service.Execute(std::string(kMaxProtocolLineBytes + 1, 'A'));
  EXPECT_EQ(r.line.rfind("ERR too-long ", 0), 0u) << r.line;
  // Errors never wedge the session.
  r = service.Execute("STATS");
  EXPECT_EQ(r.line.rfind("OK epoch=0 ", 0), 0u) << r.line;
}

TEST(ServeService, SaveFailsWithIoErrorOnBadPath) {
  LinkageService service(ServeTestConfig());
  const ServeReply r =
      service.Execute("SAVE /nonexistent-dir-xyz/links.csv");
  EXPECT_EQ(r.line.rfind("ERR io ", 0), 0u) << r.line;
}

TEST(ServeService, ShutdownRefusesFurtherCommands) {
  LinkageService service(ServeTestConfig());
  service.Execute(kIngestA);
  ServeReply r = service.Execute("SHUTDOWN");
  EXPECT_EQ(r.line, "OK bye");
  EXPECT_TRUE(r.shutdown);
  EXPECT_TRUE(service.shut_down());

  // Every post-shutdown command — including INGEST — is refused.
  r = service.Execute(kIngestB);
  EXPECT_EQ(r.line.rfind("ERR shutdown ", 0), 0u) << r.line;
  r = service.Execute("LINK");
  EXPECT_EQ(r.line.rfind("ERR shutdown ", 0), 0u) << r.line;
  // Malformed input still reports its own error first.
  r = service.Execute("FROBNICATE");
  EXPECT_EQ(r.line.rfind("ERR bad-command ", 0), 0u) << r.line;
}

TEST(ServeService, ScoresUseLinksCsvFormatting) {
  LinkageService service(ServeTestConfig());
  service.Execute(kIngestA);
  service.Execute(kIngestB);
  service.Execute("LINK");
  const ServeReply r = service.Execute("TOPK 1 1");
  // "OK matches=1 9:<score>" with the 6-decimal fixed formatting of the
  // links CSV — the serve-smoke byte-compare depends on this.
  ASSERT_EQ(r.line.rfind("OK matches=1 9:", 0), 0u) << r.line;
  const std::string score =
      r.line.substr(std::string("OK matches=1 9:").size());
  const auto parsed = ParseDouble(score);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(score, FormatServeScore(*parsed));
  EXPECT_NE(score.find('.'), std::string::npos);
  EXPECT_EQ(score.size() - score.find('.') - 1, 6u);
}

}  // namespace
}  // namespace slim
