// End-to-end tests of the full SLIM pipeline (Alg. 1) on synthetic
// workloads with known ground truth.
#include "core/slim.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "data/cab_generator.h"
#include "data/checkin_generator.h"
#include "data/sampler.h"
#include "eval/metrics.h"

namespace slim {
namespace {

const LocationDataset& CabMaster() {
  static const LocationDataset ds = [] {
    CabGeneratorOptions opt;
    opt.num_taxis = 40;
    opt.duration_days = 2.0;
    opt.record_interval_seconds = 300.0;
    return GenerateCabDataset(opt);
  }();
  return ds;
}

LinkedPairSample CabSample(double rho = 0.5, double p = 0.5,
                           uint64_t seed = 7) {
  PairSampleOptions opt;
  opt.entities_per_side = 20;
  opt.intersection_ratio = rho;
  opt.inclusion_probability = p;
  opt.seed = seed;
  auto s = SampleLinkedPair(CabMaster(), opt);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(s.value());
}

SlimConfig DefaultConfig(bool lsh = false) {
  SlimConfig c;
  c.candidates = lsh ? CandidateKind::kLsh : CandidateKind::kBruteForce;
  // LSH operating point for this small dense cab workload (see the Fig. 8
  // sweep): coarse level-10 signatures, 2-hour queries, permissive t.
  c.lsh.signature_spatial_level = 10;
  c.lsh.temporal_step_windows = 8;
  c.lsh.similarity_threshold = 0.4;
  c.threads = 2;
  return c;
}

TEST(SlimIntegration, RecoversMostTruePairsOnCab) {
  const LinkedPairSample s = CabSample();
  const SlimLinker linker(DefaultConfig());
  auto r = linker.Link(s.a, s.b);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const LinkageQuality q = EvaluateLinks(r->links, s.truth);
  EXPECT_GE(q.precision, 0.8) << "tp=" << q.true_positives
                              << " fp=" << q.false_positives;
  EXPECT_GE(q.recall, 0.7);
}

TEST(SlimIntegration, StopThresholdCutsFalsePositives) {
  // At 50% intersection half the matched pairs are false: the threshold
  // must remove most of them (precision of the *unfiltered* matching is
  // structurally ~0.5).
  const LinkedPairSample s = CabSample();
  SlimConfig keep_all = DefaultConfig();
  keep_all.apply_stop_threshold = false;
  SlimConfig thresholded = DefaultConfig();

  auto r_all = SlimLinker(keep_all).Link(s.a, s.b);
  auto r_thr = SlimLinker(thresholded).Link(s.a, s.b);
  ASSERT_TRUE(r_all.ok() && r_thr.ok());
  const LinkageQuality q_all = EvaluateLinks(r_all->links, s.truth);
  const LinkageQuality q_thr = EvaluateLinks(r_thr->links, s.truth);
  EXPECT_GT(q_thr.precision, q_all.precision);
  EXPECT_TRUE(r_thr->threshold_valid);
  EXPECT_LE(r_thr->links.size(), r_all->links.size());
}

TEST(SlimIntegration, MatchingIsOneToOne) {
  const LinkedPairSample s = CabSample();
  auto r = SlimLinker(DefaultConfig()).Link(s.a, s.b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->matching.IsValidMatching());
  std::unordered_set<EntityId> us, vs;
  for (const auto& link : r->links) {
    EXPECT_TRUE(us.insert(link.u).second);
    EXPECT_TRUE(vs.insert(link.v).second);
  }
}

TEST(SlimIntegration, DeterministicAcrossThreadCounts) {
  const LinkedPairSample s = CabSample();
  SlimConfig c1 = DefaultConfig();
  c1.threads = 1;
  SlimConfig c4 = DefaultConfig();
  c4.threads = 4;
  auto r1 = SlimLinker(c1).Link(s.a, s.b);
  auto r4 = SlimLinker(c4).Link(s.a, s.b);
  ASSERT_TRUE(r1.ok() && r4.ok());
  ASSERT_EQ(r1->links.size(), r4->links.size());
  for (size_t k = 0; k < r1->links.size(); ++k) {
    EXPECT_EQ(r1->links[k].u, r4->links[k].u);
    EXPECT_EQ(r1->links[k].v, r4->links[k].v);
    EXPECT_DOUBLE_EQ(r1->links[k].score, r4->links[k].score);
  }
  EXPECT_EQ(r1->graph.num_edges(), r4->graph.num_edges());
}

TEST(SlimIntegration, LshKeepsMostOfTheQuality) {
  const LinkedPairSample s = CabSample();
  auto brute = SlimLinker(DefaultConfig(false)).Link(s.a, s.b);
  auto lsh = SlimLinker(DefaultConfig(true)).Link(s.a, s.b);
  ASSERT_TRUE(brute.ok() && lsh.ok());
  const double f1_bf = EvaluateLinks(brute->links, s.truth).f1;
  const double f1_lsh = EvaluateLinks(lsh->links, s.truth).f1;
  ASSERT_GT(f1_bf, 0.0);
  // On this tiny 20-entity sample F1 is heavily quantised; the paper-scale
  // relative-F1 claims are exercised by bench/fig08.
  EXPECT_GE(f1_lsh / f1_bf, 0.6);
  // And it must have pruned the pair space.
  EXPECT_LT(lsh->candidate_pairs, lsh->possible_pairs);
  EXPECT_LT(lsh->stats.record_comparisons, brute->stats.record_comparisons);
}

TEST(SlimIntegration, EmptyDatasetsProduceEmptyResult) {
  LocationDataset e("E"), i("I");
  e.Finalize();
  i.Finalize();
  auto r = SlimLinker(DefaultConfig()).Link(e, i);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->links.empty());
  EXPECT_EQ(r->possible_pairs, 0u);
}

TEST(SlimIntegration, UnfinalizedInputsRejected) {
  LocationDataset e("E"), i("I");
  e.Add(0, {37.7, -122.4}, 10);
  i.Finalize();
  auto r = SlimLinker(DefaultConfig()).Link(e, i);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SlimIntegration, DegenerateThresholdKeepsAllLinks) {
  // Two symmetric entity pairs produce two IDENTICAL matched edge weights;
  // the GMM detector cannot fit and must fail open (keep every link).
  LocationDataset e("E"), i("I");
  for (int w = 0; w < 10; ++w) {
    e.Add(0, {37.70, -122.40}, w * 900 + 100);
    e.Add(1, {37.95, -122.40}, w * 900 + 100);
    i.Add(5, {37.70, -122.40}, w * 900 + 200);
    i.Add(6, {37.95, -122.40}, w * 900 + 200);
  }
  e.Finalize();
  i.Finalize();
  auto r = SlimLinker(DefaultConfig()).Link(e, i);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->threshold_valid);
  ASSERT_EQ(r->links.size(), 2u);
  EXPECT_EQ(r->links[0].u, 0);
  EXPECT_EQ(r->links[0].v, 5);
  EXPECT_EQ(r->links[1].u, 1);
  EXPECT_EQ(r->links[1].v, 6);
}

TEST(SlimIntegration, HungarianMatcherAlsoWorks) {
  const LinkedPairSample s = CabSample();
  SlimConfig cfg = DefaultConfig();
  cfg.matcher = MatcherKind::kHungarian;
  auto r = SlimLinker(cfg).Link(s.a, s.b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->matching.IsValidMatching());
  const LinkageQuality q = EvaluateLinks(r->links, s.truth);
  EXPECT_GE(q.precision, 0.8);
  // The exact matcher's total weight bounds the greedy heuristic's.
  auto greedy = SlimLinker(DefaultConfig()).Link(s.a, s.b);
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(r->matching.total_weight,
            greedy->matching.total_weight - 1e-9);
}

TEST(SlimIntegration, SparseCheckinWorkloadLinks) {
  CheckinGeneratorOptions gopt;
  gopt.num_users = 400;
  gopt.num_cities = 10;
  const LocationDataset master = GenerateCheckinDataset(gopt);
  PairSampleOptions sopt;
  sopt.entities_per_side = 150;
  sopt.inclusion_probability = 0.7;
  auto s = SampleLinkedPair(master, sopt);
  ASSERT_TRUE(s.ok());

  SlimConfig cfg = DefaultConfig();
  cfg.history.window_seconds = 3600;  // sparse data: wider windows
  auto r = SlimLinker(cfg).Link(s->a, s->b);
  ASSERT_TRUE(r.ok());
  const LinkageQuality q = EvaluateLinks(r->links, s->truth);
  EXPECT_GT(q.f1, 0.4);  // sparse check-ins are hard; must beat chance
}

// Property sweep over the spatio-temporal level (the Fig. 4 axes): the
// pipeline must run and the one-to-one constraint must hold at every
// configuration; at level >= 12 with 15-min windows quality is high.
struct LevelCase {
  int spatial_level;
  int64_t window_seconds;
};

class SlimLevelSweep : public ::testing::TestWithParam<LevelCase> {};

TEST_P(SlimLevelSweep, PipelineHealthyAtEveryLevel) {
  const LevelCase c = GetParam();
  const LinkedPairSample s = CabSample();
  SlimConfig cfg = DefaultConfig();
  cfg.history.spatial_level = c.spatial_level;
  cfg.history.window_seconds = c.window_seconds;
  auto r = SlimLinker(cfg).Link(s.a, s.b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->matching.IsValidMatching());
  for (const auto& e : r->graph.edges()) EXPECT_GT(e.weight, 0.0);
  if (c.spatial_level >= 12 && c.window_seconds <= 1800) {
    EXPECT_GE(EvaluateLinks(r->links, s.truth).f1, 0.75);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Levels, SlimLevelSweep,
    ::testing::Values(LevelCase{4, 900}, LevelCase{8, 900},
                      LevelCase{12, 900}, LevelCase{16, 900},
                      LevelCase{12, 300}, LevelCase{12, 3600},
                      LevelCase{16, 21600}));

}  // namespace
}  // namespace slim
