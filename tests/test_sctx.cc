// SCTX (core/sctx.h) contract:
//
//   * build -> WriteSctx -> ReadSctx reproduces every dataset-level
//     statistic and CSR structure of the in-heap context exactly — IDF to
//     the bit, window masks, quantized counts, the lot — so a mapped
//     context scores and links bit-identically to the build it came from,
//     for every candidate generator.
//   * build_trees = false loads a context without the window-tree heap;
//     brute/grid pipelines run unchanged on it (LSH requires trees).
//   * LinkSharded with SlimConfig::sctx_path serializes on the first run,
//     maps on every run, and matches the monolithic driver either way.
//   * Corrupt inputs (bad magic, version skew, truncation, trailing
//     garbage) fail with a Status, mirroring tests/test_sbin.cc.
#include "core/sctx.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "slim.h"

namespace slim {
namespace {

// Small but non-trivial: enough entities that every CSR array and the
// window masks carry real structure.
const LinkedPairSample& Sample() {
  static const LinkedPairSample* sample = [] {
    CheckinGeneratorOptions gen;
    gen.num_users = 300;
    gen.seed = 91;
    const LocationDataset master = GenerateCheckinDataset(gen);
    PairSampleOptions sampling;
    sampling.entities_per_side = 140;
    sampling.intersection_ratio = 0.5;
    sampling.inclusion_probability = 0.5;
    sampling.seed = 92;
    auto s = SampleLinkedPair(master, sampling);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return new LinkedPairSample(std::move(s.value()));
  }();
  return *sample;
}

class SctxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("slim_sctx_" + std::string(info->name()) + "_" +
            std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void WriteFile(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static LinkageContext BuildContext() {
    return LinkageContext::Build(Sample().a, Sample().b, HistoryConfig{}, 2);
  }

  std::filesystem::path dir_;
};

// Every public view of one store, compared exactly. IDF compares with ==
// on the doubles: SCTX stores raw bit patterns, so bit-identity — not
// closeness — is the contract.
void ExpectStoresEqual(const HistoryStore& a, const HistoryStore& b,
                       bool expect_trees) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.entity_ids(), b.entity_ids());
  EXPECT_EQ(a.bin_ids(), b.bin_ids());
  EXPECT_EQ(a.bin_counts(), b.bin_counts());
  EXPECT_EQ(a.idf_values(), b.idf_values());
  EXPECT_EQ(a.avg_bins(), b.avg_bins());
  EXPECT_EQ(b.has_trees(), expect_trees);
  for (EntityIdx u = 0; u < a.size(); ++u) {
    ASSERT_EQ(a.num_bins(u), b.num_bins(u)) << u;
    const auto aw = a.windows(u), bw = b.windows(u);
    ASSERT_TRUE(std::equal(aw.begin(), aw.end(), bw.begin(), bw.end())) << u;
    const auto aq = a.quantized_counts(u), bq = b.quantized_counts(u);
    ASSERT_TRUE(std::equal(aq.begin(), aq.end(), bq.begin(), bq.end())) << u;
    EXPECT_EQ(a.total_records(u), b.total_records(u)) << u;
    EXPECT_EQ(std::memcmp(a.window_mask(u), b.window_mask(u),
                          HistoryStore::kWindowMaskWords * sizeof(uint64_t)),
              0)
        << u;
    for (size_t k = 0; k < aw.size(); ++k) {
      EXPECT_EQ(a.WindowBinRange(u, k), b.WindowBinRange(u, k)) << u;
    }
  }
}

TEST_F(SctxTest, RoundTripReproducesEveryStructureExactly) {
  const LinkageContext built = BuildContext();
  const std::string path = Path("ctx.sctx");
  ASSERT_TRUE(WriteSctx(built, path).ok());

  auto loaded = ReadSctx(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LinkageContext& mapped = loaded.value();

  EXPECT_EQ(mapped.config.spatial_level, built.config.spatial_level);
  EXPECT_EQ(mapped.config.window_seconds, built.config.window_seconds);
  EXPECT_EQ(mapped.config.region_radius_meters,
            built.config.region_radius_meters);

  ASSERT_EQ(mapped.vocab.size(), built.vocab.size());
  for (BinId b = 0; b < built.vocab.size(); ++b) {
    EXPECT_EQ(mapped.vocab.window(b), built.vocab.window(b));
    EXPECT_EQ(mapped.vocab.cell(b), built.vocab.cell(b));
  }

  ExpectStoresEqual(built.store_e, mapped.store_e, /*expect_trees=*/true);
  ExpectStoresEqual(built.store_i, mapped.store_i, /*expect_trees=*/true);
  EXPECT_NE(mapped.backing, nullptr);
  EXPECT_EQ(built.backing, nullptr);
}

TEST_F(SctxTest, MappedContextSurvivesCopyAndOutlivesTheOriginal) {
  const std::string path = Path("ctx.sctx");
  ASSERT_TRUE(WriteSctx(BuildContext(), path).ok());
  LinkageContext copy;
  {
    auto loaded = ReadSctx(path);
    ASSERT_TRUE(loaded.ok());
    copy = loaded.value();  // views must stay valid past the original
  }
  const LinkageContext built = BuildContext();
  ExpectStoresEqual(built.store_e, copy.store_e, /*expect_trees=*/true);
}

TEST_F(SctxTest, SkippingTreesLoadsATreeFreeContext) {
  const std::string path = Path("ctx.sctx");
  ASSERT_TRUE(WriteSctx(BuildContext(), path).ok());
  SctxReadOptions options;
  options.build_trees = false;
  auto loaded = ReadSctx(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->store_e.has_trees());
  EXPECT_FALSE(loaded->store_i.has_trees());
  const LinkageContext built = BuildContext();
  ExpectStoresEqual(built.store_e, loaded->store_e, /*expect_trees=*/false);
  ExpectStoresEqual(built.store_i, loaded->store_i, /*expect_trees=*/false);
}

// ---- Pipeline bit-identity over the mapped context. ----

class SctxPipeline : public SctxTest,
                     public ::testing::WithParamInterface<CandidateKind> {};

TEST_P(SctxPipeline, MappedContextLinksBitIdentically) {
  SlimConfig config;
  config.candidates = GetParam();
  config.threads = 2;
  const auto reference = SlimLinker(config).Link(Sample().a, Sample().b);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_GT(reference->links.size(), 0u);

  const std::string path = Path("ctx.sctx");
  ASSERT_TRUE(WriteSctx(BuildContext(), path).ok());
  SctxReadOptions options;
  options.build_trees = GetParam() == CandidateKind::kLsh;
  auto loaded = ReadSctx(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  config.left_shards = 2;
  config.shards = 3;
  const auto mapped = SlimLinker(config).LinkShardedContext(loaded.value());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->links, reference->links);
  EXPECT_EQ(mapped->matching.pairs, reference->matching.pairs);
  EXPECT_EQ(mapped->graph.edges(), reference->graph.edges());
  EXPECT_EQ(mapped->candidate_pairs, reference->candidate_pairs);
}

TEST_P(SctxPipeline, SctxPathDriverSerializesOnceThenMaps) {
  SlimConfig config;
  config.candidates = GetParam();
  config.threads = 2;
  const auto reference = SlimLinker(config).Link(Sample().a, Sample().b);
  ASSERT_TRUE(reference.ok());

  // First run: no file yet — build, serialize, map, link.
  config.sctx_path = Path("driver.sctx");
  config.left_shards = 2;
  config.shards = 2;
  const auto first = SlimLinker(config).LinkSharded(Sample().a, Sample().b);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->links, reference->links);
  ASSERT_TRUE(std::filesystem::exists(config.sctx_path));

  // Second run: the file exists — mapped directly, same links. Corrupting
  // nothing between runs, the bytes must be stable (one build, one file).
  const auto before = ReadFile(config.sctx_path);
  const auto second = SlimLinker(config).LinkSharded(Sample().a, Sample().b);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->links, reference->links);
  EXPECT_EQ(ReadFile(config.sctx_path), before);
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, SctxPipeline,
                         ::testing::Values(CandidateKind::kLsh,
                                           CandidateKind::kBruteForce,
                                           CandidateKind::kGrid),
                         [](const auto& pinfo) {
                           return std::string(CandidateKindName(pinfo.param));
                         });

// ---- Error paths. ----

TEST_F(SctxTest, MissingFileFails) {
  auto r = ReadSctx(Path("nope.sctx"));
  ASSERT_FALSE(r.ok());
}

TEST_F(SctxTest, BadMagicFails) {
  const std::string path = Path("junk.sctx");
  WriteFile(path, std::string(200, 'J'));
  auto r = ReadSctx(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos)
      << r.status().message();
}

TEST_F(SctxTest, TooShortHeaderFails) {
  const std::string path = Path("short.sctx");
  WriteFile(path, std::string("SCTX"));
  auto r = ReadSctx(path);
  ASSERT_FALSE(r.ok());
}

TEST_F(SctxTest, UnsupportedVersionFails) {
  const std::string path = Path("v9.sctx");
  ASSERT_TRUE(WriteSctx(BuildContext(), path).ok());
  std::string bytes = ReadFile(path);
  bytes[4] = 9;  // bump the version field
  WriteFile(path, bytes);
  auto r = ReadSctx(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("version 9"), std::string::npos)
      << r.status().message();
}

TEST_F(SctxTest, TruncatedFileFails) {
  const std::string path = Path("trunc.sctx");
  ASSERT_TRUE(WriteSctx(BuildContext(), path).ok());
  std::string bytes = ReadFile(path);
  bytes.resize(bytes.size() - 9);
  WriteFile(path, bytes);
  auto r = ReadSctx(path);
  ASSERT_FALSE(r.ok());
}

TEST_F(SctxTest, TrailingGarbageFails) {
  const std::string path = Path("trail.sctx");
  ASSERT_TRUE(WriteSctx(BuildContext(), path).ok());
  WriteFile(path, ReadFile(path) + "extra!!!");
  auto r = ReadSctx(path);
  ASSERT_FALSE(r.ok());
}

TEST_F(SctxTest, WriteToUnwritablePathFails) {
  EXPECT_FALSE(
      WriteSctx(BuildContext(), "/nonexistent_dir_xyz/out.sctx").ok());
}

}  // namespace
}  // namespace slim
