// Tests of the dense interned core (core/linkage_context.h): vocabulary
// ordering and lookup, CSR layout equivalence with the sparse
// MobilityHistory representation, and flat IDF agreement with the sparse
// HistorySet statistics.
#include "core/linkage_context.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/history.h"
#include "data/cab_generator.h"
#include "test_util.h"

namespace slim {
namespace {

constexpr int64_t kWindow = 900;

HistoryConfig Config(int level = 12) {
  HistoryConfig c;
  c.spatial_level = level;
  c.window_seconds = kWindow;
  return c;
}

LocationDataset RandomDataset(uint64_t seed, int entities, int records,
                              const char* name) {
  Rng rng(seed);
  LocationDataset ds(name);
  for (int e = 0; e < entities; ++e) {
    for (int i = 0; i < records; ++i) {
      ds.Add(e, testing::RandomPointInBox(&rng),
             rng.NextInt64(0, 40) * kWindow + rng.NextInt64(0, kWindow - 1));
    }
  }
  ds.Finalize();
  return ds;
}

TEST(BinVocabulary, IdsAreDenseAndOrderedByWindowThenCell) {
  const LocationDataset a = RandomDataset(1, 6, 40, "a");
  const LocationDataset b = RandomDataset(2, 6, 40, "b");
  const LinkageContext ctx = LinkageContext::Build(a, b, Config());
  ASSERT_GT(ctx.vocab.size(), 0u);
  for (BinId bin = 1; bin < ctx.vocab.size(); ++bin) {
    const bool ordered =
        ctx.vocab.window(bin - 1) < ctx.vocab.window(bin) ||
        (ctx.vocab.window(bin - 1) == ctx.vocab.window(bin) &&
         ctx.vocab.cell(bin - 1) < ctx.vocab.cell(bin));
    EXPECT_TRUE(ordered) << "bin " << bin;
  }
  // Find() inverts the id assignment, and misses report nullopt.
  for (BinId bin = 0; bin < ctx.vocab.size(); ++bin) {
    const auto found = ctx.vocab.Find(ctx.vocab.window(bin),
                                      ctx.vocab.cell(bin));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, bin);
  }
  EXPECT_FALSE(ctx.vocab.Find(999999, ctx.vocab.cell(0)).has_value());
}

TEST(HistoryStore, CsrLayoutMatchesSparseHistories) {
  const LocationDataset a = RandomDataset(3, 8, 60, "a");
  const LocationDataset b = RandomDataset(4, 8, 60, "b");
  const LinkageContext ctx = LinkageContext::Build(a, b, Config());
  const HistorySet sparse = HistorySet::Build(a, Config());

  ASSERT_EQ(ctx.store_e.size(), sparse.size());
  for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
    const MobilityHistory& h = sparse.histories()[u];
    ASSERT_EQ(ctx.store_e.entity_id(u), h.entity());
    EXPECT_EQ(*ctx.store_e.IndexOf(h.entity()), u);
    ASSERT_EQ(ctx.store_e.num_bins(u), h.num_bins());
    EXPECT_EQ(ctx.store_e.total_records(u), h.total_records());

    // Bin spans must decode to the sparse bins, in the same order.
    const auto bins = ctx.store_e.bins(u);
    const auto counts = ctx.store_e.counts(u);
    for (size_t k = 0; k < bins.size(); ++k) {
      EXPECT_EQ(ctx.vocab.window(bins[k]), h.bins()[k].window);
      EXPECT_EQ(ctx.vocab.cell(bins[k]), h.bins()[k].cell);
      EXPECT_EQ(counts[k], h.bins()[k].record_count);
      if (k > 0) {
        EXPECT_LT(bins[k - 1], bins[k]);  // ascending BinIds
      }
    }

    // Window index equivalence: same distinct windows, same per-window
    // bins.
    const auto windows = ctx.store_e.windows(u);
    ASSERT_EQ(std::vector<int64_t>(windows.begin(), windows.end()),
              h.windows());
    for (size_t k = 0; k < windows.size(); ++k) {
      const auto [begin, end] = ctx.store_e.WindowBinRange(u, k);
      const auto sparse_span = h.BinsInWindow(windows[k]);
      ASSERT_EQ(end - begin, sparse_span.size());
      for (uint32_t pos = begin; pos < end; ++pos) {
        EXPECT_EQ(ctx.vocab.window(ctx.store_e.bin_ids()[pos]), windows[k]);
      }
    }

    // Trees carry the same aggregates.
    EXPECT_EQ(ctx.store_e.tree(u).total_records(), h.tree().total_records());
    EXPECT_EQ(ctx.store_e.tree(u).num_windows(), h.tree().num_windows());
  }
  EXPECT_DOUBLE_EQ(ctx.store_e.avg_bins(), sparse.avg_bins_per_history());
}

TEST(HistoryStore, WindowMaskCoversEveryOccupiedWindow) {
  const LocationDataset a = RandomDataset(31, 8, 60, "a");
  const LocationDataset b = RandomDataset(32, 8, 60, "b");
  const LinkageContext ctx = LinkageContext::Build(a, b, Config());
  for (const HistoryStore* store : {&ctx.store_e, &ctx.store_i}) {
    for (EntityIdx u = 0; u < store->size(); ++u) {
      const uint64_t* mask = store->window_mask(u);
      // The fingerprint is a superset summary: every occupied window must
      // have its (window mod 512) bit set, or the scoring prefilter could
      // wrongly prove an intersection empty.
      for (const int64_t w : store->windows(u)) {
        const uint64_t uw = static_cast<uint64_t>(w);
        const uint64_t word = mask[(uw >> 6) % HistoryStore::kWindowMaskWords];
        EXPECT_NE(word & (uint64_t{1} << (uw & 63)), 0u)
            << "entity " << u << " window " << w;
      }
      // And an empty history must have an all-zero mask, so the prefilter
      // also covers the empty case.
      if (store->windows(u).empty()) {
        for (size_t k = 0; k < HistoryStore::kWindowMaskWords; ++k) {
          EXPECT_EQ(mask[k], 0u);
        }
      }
    }
  }
}

TEST(HistoryStore, FlatIdfAgreesWithSparseHistorySet) {
  const LocationDataset a = RandomDataset(5, 10, 50, "a");
  const LocationDataset b = RandomDataset(6, 10, 50, "b");
  const LinkageContext ctx = LinkageContext::Build(a, b, Config());
  const HistorySet sparse_e = HistorySet::Build(a, Config());
  const HistorySet sparse_i = HistorySet::Build(b, Config());

  for (BinId bin = 0; bin < ctx.vocab.size(); ++bin) {
    const int64_t w = ctx.vocab.window(bin);
    const CellId cell = ctx.vocab.cell(bin);
    EXPECT_EQ(ctx.store_e.bin_entity_count(bin),
              sparse_e.BinEntityCount(w, cell));
    EXPECT_EQ(ctx.store_i.bin_entity_count(bin),
              sparse_i.BinEntityCount(w, cell));
    // Bit-equal, not approximately equal: the dense pipeline must keep the
    // sparse pipeline's arithmetic.
    EXPECT_EQ(ctx.store_e.idf(bin), sparse_e.Idf(w, cell)) << "bin " << bin;
    EXPECT_EQ(ctx.store_i.idf(bin), sparse_i.Idf(w, cell)) << "bin " << bin;
  }
  // Length normalisation agreement, at a few b values.
  for (double bee : {0.0, 0.5, 1.0}) {
    for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
      EXPECT_EQ(ctx.store_e.LengthNorm(u, bee),
                sparse_e.LengthNorm(sparse_e.histories()[u], bee));
    }
  }
}

TEST(HistoryStore, LookupMissesReturnNullopt) {
  const LocationDataset a = RandomDataset(7, 3, 20, "a");
  const LocationDataset b = RandomDataset(8, 3, 20, "b");
  const LinkageContext ctx = LinkageContext::Build(a, b, Config());
  EXPECT_FALSE(ctx.store_e.IndexOf(12345).has_value());
  EXPECT_TRUE(ctx.store_e.IndexOf(0).has_value());
}

TEST(LinkageContext, EmptyDatasetsBuildEmptyStores) {
  LocationDataset a("a"), b("b");
  a.Finalize();
  b.Finalize();
  const LinkageContext ctx = LinkageContext::Build(a, b, Config());
  EXPECT_EQ(ctx.vocab.size(), 0u);
  EXPECT_EQ(ctx.store_e.size(), 0u);
  EXPECT_EQ(ctx.store_i.size(), 0u);
  EXPECT_DOUBLE_EQ(ctx.store_e.avg_bins(), 0.0);
}

TEST(LinkageContext, RegionRecordsFanOutAcrossCells) {
  // A region record must intern one bin per covered leaf cell, mirroring
  // the sparse representation's Sec. 2.1 extension.
  LocationDataset a("a"), b("b");
  a.Add(0, {37.7, -122.4}, 100);
  b.Add(0, {37.7, -122.4}, 100);
  a.Finalize();
  b.Finalize();
  HistoryConfig point_cfg = Config(14);
  HistoryConfig region_cfg = Config(14);
  region_cfg.region_radius_meters = 3000.0;
  const LinkageContext points = LinkageContext::Build(a, b, point_cfg);
  const LinkageContext regions = LinkageContext::Build(a, b, region_cfg);
  EXPECT_EQ(points.store_e.num_bins(0), 1u);
  EXPECT_GT(regions.store_e.num_bins(0), 1u);
  EXPECT_EQ(regions.store_e.total_records(0), 1u);
}

}  // namespace
}  // namespace slim
