#include "stats/lambert_w.h"

#include <cmath>

#include <gtest/gtest.h>

namespace slim {
namespace {

TEST(LambertW0, KnownValues) {
  EXPECT_NEAR(LambertW0(0.0), 0.0, 1e-14);
  EXPECT_NEAR(LambertW0(std::exp(1.0)), 1.0, 1e-9);            // W(e) = 1
  EXPECT_NEAR(LambertW0(2.0 * std::exp(2.0)), 2.0, 1e-9);      // W(2e^2) = 2
  EXPECT_NEAR(LambertW0(-1.0 / std::exp(1.0)), -1.0, 1e-5);    // branch point
  EXPECT_NEAR(LambertW0(1.0), 0.5671432904097838, 1e-9);       // Omega const
}

TEST(LambertW0, InverseRoundTrip) {
  // W(x) e^{W(x)} = x over a wide range.
  for (double x : {-0.35, -0.1, 0.01, 0.5, 1.0, 3.0, 10.0, 100.0, 1e6}) {
    const double w = LambertW0(x);
    EXPECT_NEAR(w * std::exp(w), x, std::abs(x) * 1e-8 + 1e-10) << x;
  }
}

TEST(LambertW0, MonotoneIncreasing) {
  double prev = LambertW0(-0.36);
  for (double x = -0.3; x < 50.0; x += 0.7) {
    const double w = LambertW0(x);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(LambertW0, DiesBelowBranchPoint) {
  EXPECT_DEATH(LambertW0(-0.5), "-1/e");
}

TEST(LambertW0, PaperBandSizingExample) {
  // b = e^{W(-s ln t)}: for s = 4, t = 0.6 the paper's sizing gives b ~ 2.4.
  const double s = 4.0, t = 0.6;
  const double b = std::exp(LambertW0(-s * std::log(t)));
  EXPECT_GT(b, 1.5);
  EXPECT_LT(b, 3.5);
  // Self-consistency of the derivation: with r = s / b, t == (1/b)^(1/r).
  const double r = s / b;
  EXPECT_NEAR(std::pow(1.0 / b, 1.0 / r), t, 1e-9);
}

}  // namespace
}  // namespace slim
